//! Multiplexing many consensus groups over one gossip substrate.
//!
//! The paper evaluates a single Paxos group per overlay; scaling past one
//! coordinator's pipeline requires many independent groups *sharing* the
//! gossip layer (ROADMAP item 1, cf. OPTIMUMP2P's multi-stream gossip).
//! [`Grouped`] wraps any [`GossipItem`] with a group id and keeps the two
//! substrate-level namespaces disjoint per group:
//!
//! * **message identity** — the group id is packed into the top bits of the
//!   inner [`MessageId`], so the recently-seen cache, the Plumtree per-source
//!   trees, and every dedup filter treat equal messages from different
//!   groups as distinct;
//! * **trace identity** — [`TraceTag::instance`] is rewritten to the
//!   group-scoped instance id (`group << 56 | instance`), matching how the
//!   runtimes scope protocol events, so critical-path joins stay exact.
//!
//! [`GroupedSemantics`] lifts a per-group [`Semantics`] implementation to
//! `Semantics<Grouped<M>>` by dispatching every hook to the message's group:
//! filtering state, aggregation tallies, and GC watermarks stay fully
//! isolated between groups while sharing one send path.

use crate::codec::{Reader, Wire, WireError};
use crate::id::{MessageId, NodeId};
use crate::node::{GossipItem, TraceTag};
use crate::semantics::Semantics;

/// Maximum number of groups multiplexed over one substrate.
///
/// Group ids occupy the top [`GROUP_BITS`] bits of the 128-bit message id;
/// inner message ids must leave them clear (checked in debug builds).
pub const MAX_GROUPS: u32 = 1 << GROUP_BITS;

/// Bits of the message id reserved for the group.
pub const GROUP_BITS: u32 = 5;

const GROUP_SHIFT: u32 = 128 - GROUP_BITS;

/// Bits of a protocol `instance` field reserved for the group when scoping
/// instances (`group << INSTANCE_GROUP_SHIFT | instance`). Group 0 is the
/// identity, so single-group traces are unchanged.
pub const INSTANCE_GROUP_SHIFT: u32 = 56;

/// Scopes a protocol instance id to a group: `group << 56 | instance`.
///
/// Identity for group 0, so existing single-group traces, fixtures, and
/// health tracking are unaffected.
#[inline]
pub fn group_scoped_instance(group: u32, instance: u64) -> u64 {
    debug_assert!(group < MAX_GROUPS, "group {group} out of range");
    debug_assert!(
        instance < (1 << INSTANCE_GROUP_SHIFT),
        "instance {instance} overflows the group-scoped encoding"
    );
    ((group as u64) << INSTANCE_GROUP_SHIFT) | instance
}

/// A gossip message tagged with the consensus group it belongs to.
///
/// The wrapper is what actually travels on a shared substrate: one byte of
/// group id on the wire, and group-disjoint message/trace identities (see
/// the [module docs](self)).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Grouped<M> {
    /// The consensus group this message belongs to (`< MAX_GROUPS`).
    pub group: u32,
    /// The protocol message.
    pub inner: M,
}

impl<M> Grouped<M> {
    /// Wraps `inner` for `group`.
    ///
    /// # Panics
    ///
    /// Panics if `group >= MAX_GROUPS`.
    pub fn new(group: u32, inner: M) -> Self {
        assert!(
            group < MAX_GROUPS,
            "group {group} out of range (max {MAX_GROUPS})"
        );
        Self { group, inner }
    }
}

impl<M: GossipItem> GossipItem for Grouped<M> {
    fn message_id(&self) -> MessageId {
        let raw = self.inner.message_id().as_u128();
        debug_assert_eq!(
            raw >> GROUP_SHIFT,
            0,
            "inner message id uses the group bits"
        );
        MessageId::from_u128(((self.group as u128) << GROUP_SHIFT) | raw)
    }

    fn wire_size(&self) -> usize {
        // One group-id byte on top of the inner encoding.
        self.inner.wire_size() + 1
    }

    fn trace_tag(&self) -> Option<TraceTag> {
        let mut tag = self.inner.trace_tag()?;
        if tag.instance != TraceTag::NO_INSTANCE {
            tag.instance = group_scoped_instance(self.group, tag.instance);
        }
        Some(tag)
    }
}

/// The on-wire form is exactly what [`GossipItem::wire_size`] accounts
/// for: one group-id byte followed by the inner encoding.
impl<M: Wire> Wire for Grouped<M> {
    fn encode(&self, buf: &mut Vec<u8>) {
        debug_assert!(self.group < MAX_GROUPS, "group {} out of range", self.group);
        buf.push(self.group as u8);
        self.inner.encode(buf);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let group = r.u8()? as u32;
        if group >= MAX_GROUPS {
            return Err(WireError::Invalid("group id out of range"));
        }
        let inner = M::decode(r)?;
        Ok(Grouped { group, inner })
    }

    fn encoded_len(&self) -> usize {
        1 + self.inner.encoded_len()
    }
}

/// Lifts per-group [`Semantics`] over a shared substrate: hook calls are
/// dispatched to the group of each [`Grouped`] message, so each group's
/// filtering/aggregation state evolves exactly as it would on a dedicated
/// substrate.
#[derive(Debug)]
pub struct GroupedSemantics<S> {
    groups: Vec<S>,
}

impl<S> GroupedSemantics<S> {
    /// One inner semantics per group; group `g` dispatches to `groups[g]`.
    ///
    /// # Panics
    ///
    /// Panics if `groups` is empty or larger than [`MAX_GROUPS`].
    pub fn new(groups: Vec<S>) -> Self {
        assert!(!groups.is_empty(), "at least one group required");
        assert!(
            groups.len() <= MAX_GROUPS as usize,
            "{} groups exceed MAX_GROUPS ({MAX_GROUPS})",
            groups.len()
        );
        Self { groups }
    }

    /// Number of groups.
    pub fn len(&self) -> usize {
        self.groups.len()
    }

    /// Whether there are no groups (never true — `new` requires one).
    pub fn is_empty(&self) -> bool {
        self.groups.is_empty()
    }

    /// The inner semantics of one group.
    pub fn get(&self, group: u32) -> &S {
        &self.groups[group as usize]
    }

    /// Mutable inner semantics of one group (e.g. for GC watermarks).
    pub fn get_mut(&mut self, group: u32) -> &mut S {
        &mut self.groups[group as usize]
    }

    /// Iterates over the per-group inner semantics.
    pub fn iter(&self) -> impl Iterator<Item = &S> {
        self.groups.iter()
    }

    /// Mutably iterates over the per-group inner semantics.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = &mut S> {
        self.groups.iter_mut()
    }
}

impl<M, S: Semantics<M>> Semantics<Grouped<M>> for GroupedSemantics<S> {
    fn observe(&mut self, msg: &Grouped<M>) {
        self.groups[msg.group as usize].observe(&msg.inner);
    }

    fn validate(&mut self, msg: &Grouped<M>, peer: NodeId) -> bool {
        self.groups[msg.group as usize].validate(&msg.inner, peer)
    }

    fn aggregate(&mut self, pending: Vec<Grouped<M>>, peer: NodeId) -> Vec<Grouped<M>> {
        // Fast path: a batch from a single group (the common case at low
        // group counts) avoids the partition step entirely.
        if let Some(first) = pending.first() {
            let g = first.group;
            if pending.iter().all(|m| m.group == g) {
                let inner: Vec<M> = pending.into_iter().map(|m| m.inner).collect();
                return self.groups[g as usize]
                    .aggregate(inner, peer)
                    .into_iter()
                    .map(|m| Grouped { group: g, inner: m })
                    .collect();
            }
        } else {
            return pending;
        }
        // Mixed batch: aggregate each group's run independently, emitting
        // groups in order of first appearance so the relative order of each
        // group's messages is preserved.
        let mut order: Vec<u32> = Vec::new();
        let mut buckets: Vec<Vec<M>> = (0..self.groups.len()).map(|_| Vec::new()).collect();
        for m in pending {
            let idx = m.group as usize;
            if buckets[idx].is_empty() {
                order.push(m.group);
            }
            buckets[idx].push(m.inner);
        }
        let mut out = Vec::new();
        for g in order {
            let inner = std::mem::take(&mut buckets[g as usize]);
            out.extend(
                self.groups[g as usize]
                    .aggregate(inner, peer)
                    .into_iter()
                    .map(|m| Grouped { group: g, inner: m }),
            );
        }
        out
    }

    fn disaggregate(&mut self, msg: Grouped<M>) -> Vec<Grouped<M>> {
        let g = msg.group;
        self.groups[g as usize]
            .disaggregate(msg.inner)
            .into_iter()
            .map(|m| Grouped { group: g, inner: m })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Clone, Debug, PartialEq)]
    struct Item(u64);

    impl GossipItem for Item {
        fn message_id(&self) -> MessageId {
            MessageId::from_u128(self.0 as u128)
        }
        fn wire_size(&self) -> usize {
            8
        }
        fn trace_tag(&self) -> Option<TraceTag> {
            Some(TraceTag {
                kind: "item",
                instance: self.0,
                origin: 1,
                seq: self.0,
            })
        }
    }

    #[test]
    fn group_bits_disambiguate_equal_inner_ids() {
        let a = Grouped::new(0, Item(7));
        let b = Grouped::new(1, Item(7));
        assert_ne!(a.message_id(), b.message_id());
        // Group 0 is the identity encoding.
        assert_eq!(a.message_id(), Item(7).message_id());
        assert_eq!(
            b.message_id().as_u128() >> GROUP_SHIFT,
            1,
            "group rides in the top bits"
        );
    }

    #[test]
    fn wire_size_adds_one_group_byte() {
        assert_eq!(Grouped::new(3, Item(9)).wire_size(), 9);
    }

    #[test]
    fn trace_tag_scopes_instance_by_group() {
        let tag = Grouped::new(2, Item(5)).trace_tag().unwrap();
        assert_eq!(tag.instance, (2u64 << INSTANCE_GROUP_SHIFT) | 5);
        // Group 0 leaves instances untouched.
        let tag0 = Grouped::new(0, Item(5)).trace_tag().unwrap();
        assert_eq!(tag0.instance, 5);
    }

    #[test]
    fn no_instance_sentinel_passes_through() {
        #[derive(Clone)]
        struct Unbound;
        impl GossipItem for Unbound {
            fn message_id(&self) -> MessageId {
                MessageId::from_u128(1)
            }
            fn wire_size(&self) -> usize {
                1
            }
            fn trace_tag(&self) -> Option<TraceTag> {
                Some(TraceTag {
                    kind: "unbound",
                    instance: TraceTag::NO_INSTANCE,
                    origin: 0,
                    seq: 0,
                })
            }
        }
        let tag = Grouped::new(3, Unbound).trace_tag().unwrap();
        assert_eq!(tag.instance, TraceTag::NO_INSTANCE);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn oversized_group_panics() {
        let _ = Grouped::new(MAX_GROUPS, Item(0));
    }

    #[test]
    fn wire_roundtrip_carries_one_group_byte() {
        let msg = Grouped::new(5, 0xDEAD_BEEFu64);
        let bytes = msg.to_bytes();
        assert_eq!(bytes[0], 5, "the group id leads the frame");
        assert_eq!(bytes.len(), msg.encoded_len());
        assert_eq!(bytes.len(), 1 + 0xDEAD_BEEFu64.encoded_len());
        let decoded = Grouped::<u64>::decode(&mut Reader::new(&bytes)).unwrap();
        assert_eq!(decoded, msg);

        // A frame claiming an impossible group is rejected, not wrapped.
        let mut bad = bytes.clone();
        bad[0] = MAX_GROUPS as u8;
        assert_eq!(
            Grouped::<u64>::decode(&mut Reader::new(&bad)),
            Err(WireError::Invalid("group id out of range"))
        );
    }

    /// Per-group counter semantics: observe counts, validate drops odd
    /// values, aggregate sums, disaggregate splits >100.
    #[derive(Default, Clone)]
    struct Counting {
        observed: Vec<u64>,
    }

    impl Semantics<u64> for Counting {
        fn observe(&mut self, msg: &u64) {
            self.observed.push(*msg);
        }
        fn validate(&mut self, msg: &u64, _peer: NodeId) -> bool {
            msg.is_multiple_of(2)
        }
        fn aggregate(&mut self, pending: Vec<u64>, _peer: NodeId) -> Vec<u64> {
            vec![pending.iter().sum()]
        }
        fn disaggregate(&mut self, msg: u64) -> Vec<u64> {
            if msg > 100 {
                vec![msg - 100, 100]
            } else {
                vec![msg]
            }
        }
    }

    fn wrap(group: u32, values: &[u64]) -> Vec<Grouped<u64>> {
        values.iter().map(|&v| Grouped::new(group, v)).collect()
    }

    #[test]
    fn hooks_dispatch_to_the_message_group() {
        let mut s = GroupedSemantics::new(vec![Counting::default(), Counting::default()]);
        s.observe(&Grouped::new(0, 10));
        s.observe(&Grouped::new(1, 20));
        s.observe(&Grouped::new(1, 21));
        assert_eq!(s.get(0).observed, vec![10]);
        assert_eq!(s.get(1).observed, vec![20, 21]);

        let peer = NodeId::new(4);
        assert!(s.validate(&Grouped::new(0, 2), peer));
        assert!(!s.validate(&Grouped::new(1, 3), peer));

        assert_eq!(
            s.disaggregate(Grouped::new(1, 150)),
            vec![Grouped::new(1, 50), Grouped::new(1, 100)]
        );
    }

    #[test]
    fn aggregation_is_isolated_per_group() {
        let mut s = GroupedSemantics::new(vec![Counting::default(), Counting::default()]);
        let peer = NodeId::new(0);
        // Single-group batch takes the fast path.
        assert_eq!(
            s.aggregate(wrap(1, &[1, 2, 3]), peer),
            vec![Grouped::new(1, 6)]
        );
        // Mixed batch: each group sums only its own values, groups emitted
        // in first-appearance order.
        let mixed = vec![
            Grouped::new(1, 5),
            Grouped::new(0, 7),
            Grouped::new(1, 6),
            Grouped::new(0, 8),
        ];
        assert_eq!(
            s.aggregate(mixed, peer),
            vec![Grouped::new(1, 11), Grouped::new(0, 15)]
        );
        // Empty input stays empty.
        assert_eq!(s.aggregate(Vec::new(), peer), Vec::<Grouped<u64>>::new());
    }
}
