//! Process and message identifiers.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Identifier of a process participating in gossip/consensus.
///
/// Process ids are dense small integers (they index overlay nodes and region
/// maps); by convention id 0 is the Paxos coordinator in the experiments.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct NodeId(u32);

impl NodeId {
    /// Creates a node id.
    pub const fn new(id: u32) -> Self {
        NodeId(id)
    }

    /// The raw integer value.
    pub const fn as_u32(self) -> u32 {
        self.0
    }

    /// The id as an index into per-process arrays.
    pub const fn as_index(self) -> usize {
        self.0 as usize
    }
}

impl From<u32> for NodeId {
    fn from(id: u32) -> Self {
        NodeId(id)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// Globally unique identifier of a gossiped message.
///
/// The paper lets the *consensus protocol* define message identifiers so it
/// can guarantee uniqueness without hash collisions (§3.3); the recently-seen
/// cache stores these ids instead of full messages. 128 bits leave room to
/// pack `(kind, instance, round, sender)` structurally — see
/// [`MessageId::from_parts`].
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct MessageId(u128);

impl MessageId {
    /// Builds an id from a raw 128-bit value.
    pub const fn from_u128(v: u128) -> Self {
        MessageId(v)
    }

    /// Packs two 64-bit words into an id (high, low).
    ///
    /// # Example
    ///
    /// ```
    /// use semantic_gossip::MessageId;
    /// let id = MessageId::from_parts(1, 2);
    /// assert_eq!(id.as_u128(), (1u128 << 64) | 2);
    /// ```
    pub const fn from_parts(high: u64, low: u64) -> Self {
        MessageId(((high as u128) << 64) | low as u128)
    }

    /// The raw 128-bit value.
    pub const fn as_u128(self) -> u128 {
        self.0
    }

    /// The high 64-bit word.
    pub const fn high(self) -> u64 {
        (self.0 >> 64) as u64
    }

    /// The low 64-bit word.
    pub const fn low(self) -> u64 {
        self.0 as u64
    }

    /// A 64-bit fold of the full id, for trace events whose `msg` field is
    /// a single word.
    ///
    /// Structural ids keep the distinguishing kind/round bits in the high
    /// word and the instance in the low word, so neither half alone is
    /// unique; mixing the high word through a SplitMix64-style finalizer
    /// before xoring keeps distinct 128-bit ids distinct in practice.
    pub const fn trace_id(self) -> u64 {
        let mut h = self.high().wrapping_mul(0x9e37_79b9_7f4a_7c15);
        h ^= h >> 32;
        h = h.wrapping_mul(0xd6e8_feb8_6659_fd93);
        h ^= h >> 32;
        h ^ self.low()
    }
}

impl fmt::Display for MessageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

/// A stable 64-bit hash (FNV-1a) for building message ids from raw bytes.
///
/// Deterministic across platforms and runs — unlike `std`'s `DefaultHasher`,
/// which is randomly keyed per process.
///
/// # Example
///
/// ```
/// let h1 = semantic_gossip::id::stable_hash64(b"value-1");
/// let h2 = semantic_gossip::id::stable_hash64(b"value-1");
/// assert_eq!(h1, h2);
/// ```
pub fn stable_hash64(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(PRIME);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn node_id_round_trip() {
        let id = NodeId::new(42);
        assert_eq!(id.as_u32(), 42);
        assert_eq!(id.as_index(), 42);
        assert_eq!(NodeId::from(42u32), id);
        assert_eq!(id.to_string(), "p42");
    }

    #[test]
    fn message_id_parts() {
        let id = MessageId::from_parts(0xdead_beef, 0xcafe);
        assert_eq!(id.high(), 0xdead_beef);
        assert_eq!(id.low(), 0xcafe);
        assert_eq!(MessageId::from_u128(id.as_u128()), id);
    }

    #[test]
    fn trace_id_distinguishes_ids_sharing_a_half() {
        // Same low word (instance), different high words (kinds): the low
        // word alone would collide, the fold must not.
        let ids: HashSet<u64> = (0..1000u64)
            .flat_map(|high| (0..10u64).map(move |low| MessageId::from_parts(high, low).trace_id()))
            .collect();
        assert_eq!(ids.len(), 10_000);
        // Deterministic across calls.
        assert_eq!(
            MessageId::from_parts(7, 9).trace_id(),
            MessageId::from_parts(7, 9).trace_id()
        );
    }

    #[test]
    fn message_id_display_is_hex() {
        assert_eq!(
            MessageId::from_parts(0, 255).to_string(),
            "000000000000000000000000000000ff"
        );
    }

    #[test]
    fn stable_hash_spreads() {
        let hashes: HashSet<u64> = (0..10_000u32)
            .map(|i| stable_hash64(&i.to_le_bytes()))
            .collect();
        assert_eq!(hashes.len(), 10_000);
    }

    #[test]
    fn stable_hash_known_vector() {
        // FNV-1a of empty input is the offset basis.
        assert_eq!(stable_hash64(b""), 0xcbf2_9ce4_8422_2325);
    }
}
