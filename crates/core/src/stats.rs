//! Message accounting.
//!
//! Section 4.3 of the paper quantifies gossip's redundancy by counting, per
//! process: messages received, the share discarded as duplicates, messages
//! delivered to consensus, and — for Semantic Gossip — messages filtered out
//! and replaced by aggregation. [`MessageStats`] tracks exactly those
//! counters; the `msgstats` experiment aggregates them across processes.

use std::fmt;
use std::ops::AddAssign;

use serde::{Deserialize, Serialize};

/// A monotonically increasing counter (local to one gossip node).
///
/// This is the canonical [`obs::Counter`] — the same type `simnet` uses —
/// re-exported under the name this crate has always given it.
pub use obs::Counter as Stat;

/// Per-node message counters, mirroring §4.3's measurements.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MessageStats {
    /// Messages received from peers (before disaggregation and duplicate
    /// checking).
    pub received: Stat,
    /// Individual messages obtained after disaggregating received messages.
    pub received_parts: Stat,
    /// Received parts discarded because they were recently seen.
    pub duplicates: Stat,
    /// Messages delivered to the consensus protocol (local + remote).
    pub delivered: Stat,
    /// Messages handed to the transport, after filtering and aggregation.
    pub sent: Stat,
    /// Wire bytes of the messages counted in `sent` — what the node asked
    /// the transport to put on the wire (per-class attribution lives in
    /// `obs::ResourceLedger`; this is the node-local total).
    pub bytes_sent: Stat,
    /// Messages dropped on the send path by semantic filtering.
    pub filtered: Stat,
    /// Wire bytes of the messages counted in `filtered` — the bandwidth
    /// the semantic filter saved at this node.
    pub bytes_filtered: Stat,
    /// Messages removed by semantic aggregation (inputs minus outputs of
    /// `aggregate`).
    pub aggregated_away: Stat,
    /// Messages dropped because a send queue was full.
    pub send_overflow: Stat,
    /// Messages dropped because the delivery queue was full.
    pub delivery_overflow: Stat,
    /// Enqueues (delivery or per-peer) that shared the payload by handle
    /// instead of deep-cloning it — each is one copy the pre-sharing
    /// fan-out would have made.
    pub shared_enqueues: Stat,
    /// Deep clones performed at drain time because a shared payload was
    /// still aliased by another queue (the deferred cost of sharing).
    pub drain_clones: Stat,
}

impl MessageStats {
    /// Fraction of received parts that were duplicates, or 0 when nothing
    /// was received. This is the paper's "portion of received messages
    /// discarded because they are duplicated" (87% for classic gossip at
    /// n = 105).
    pub fn duplicate_ratio(&self) -> f64 {
        let parts = self.received_parts.get();
        if parts == 0 {
            0.0
        } else {
            self.duplicates.get() as f64 / parts as f64
        }
    }

    /// Net payload copies the shared fan-out avoided: enqueues served by a
    /// handle, minus the deep clones sharing deferred to drain time.
    pub fn clones_avoided(&self) -> u64 {
        self.shared_enqueues
            .get()
            .saturating_sub(self.drain_clones.get())
    }

    /// Merges another node's counters into this one (for cluster-wide
    /// aggregation).
    pub fn merge(&mut self, other: &MessageStats) {
        self.received += other.received;
        self.received_parts += other.received_parts;
        self.duplicates += other.duplicates;
        self.delivered += other.delivered;
        self.sent += other.sent;
        self.bytes_sent += other.bytes_sent;
        self.filtered += other.filtered;
        self.bytes_filtered += other.bytes_filtered;
        self.aggregated_away += other.aggregated_away;
        self.send_overflow += other.send_overflow;
        self.delivery_overflow += other.delivery_overflow;
        self.shared_enqueues += other.shared_enqueues;
        self.drain_clones += other.drain_clones;
    }
}

impl AddAssign<MessageStats> for MessageStats {
    fn add_assign(&mut self, rhs: MessageStats) {
        self.merge(&rhs);
    }
}

impl AddAssign<&MessageStats> for MessageStats {
    fn add_assign(&mut self, rhs: &MessageStats) {
        self.merge(rhs);
    }
}

impl fmt::Display for MessageStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "recv={} parts={} dup={} ({:.1}%) delivered={} sent={} ({} B) filtered={} ({} B) aggregated={} overflow={}/{} shared={} drain_clones={}",
            self.received,
            self.received_parts,
            self.duplicates,
            self.duplicate_ratio() * 100.0,
            self.delivered,
            self.sent,
            self.bytes_sent,
            self.filtered,
            self.bytes_filtered,
            self.aggregated_away,
            self.send_overflow,
            self.delivery_overflow,
            self.shared_enqueues,
            self.drain_clones,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duplicate_ratio_handles_empty() {
        assert_eq!(MessageStats::default().duplicate_ratio(), 0.0);
    }

    #[test]
    fn duplicate_ratio_counts_parts() {
        let mut s = MessageStats::default();
        s.received_parts.add(10);
        s.duplicates.add(4);
        assert!((s.duplicate_ratio() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn merge_adds_fields() {
        let mut a = MessageStats::default();
        a.received.add(1);
        a.filtered.add(2);
        let mut b = MessageStats::default();
        b.received.add(10);
        b.aggregated_away.add(5);
        a.merge(&b);
        assert_eq!(a.received.get(), 11);
        assert_eq!(a.filtered.get(), 2);
        assert_eq!(a.aggregated_away.get(), 5);
    }

    #[test]
    fn add_assign_is_merge() {
        let mut a = MessageStats::default();
        a.sent.add(3);
        let mut b = MessageStats::default();
        b.sent.add(4);
        b.duplicates.incr();
        a += &b;
        a += b;
        assert_eq!(a.sent.get(), 11);
        assert_eq!(a.duplicates.get(), 2);
    }

    #[test]
    fn display_is_nonempty() {
        let s = MessageStats::default();
        assert!(s.to_string().contains("recv=0"));
        assert!(s.to_string().contains("shared=0"));
    }

    #[test]
    fn byte_counters_merge_and_display() {
        let mut a = MessageStats::default();
        a.bytes_sent.add(1_000);
        a.bytes_filtered.add(200);
        let mut b = MessageStats::default();
        b.bytes_sent.add(24);
        a.merge(&b);
        assert_eq!(a.bytes_sent.get(), 1_024);
        assert_eq!(a.bytes_filtered.get(), 200);
        assert!(a.to_string().contains("(1024 B)"));
    }

    #[test]
    fn clones_avoided_nets_out_drain_clones() {
        let mut s = MessageStats::default();
        s.shared_enqueues.add(8);
        s.drain_clones.add(3);
        assert_eq!(s.clones_avoided(), 5);
        // Never underflows even if counters are merged asymmetrically.
        s.drain_clones.add(10);
        assert_eq!(s.clones_avoided(), 0);
    }
}
