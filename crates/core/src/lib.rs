//! **Semantic Gossip** — the primary contribution of *Gossip Consensus*
//! (Cason, Milosevic, Milosevic, Pedone — Middleware '21).
//!
//! A gossip communication substrate for consensus protocols running in
//! partially connected networks. A [`GossipNode`] exposes the paper's two
//! primitives — `broadcast` (non-blocking, addressed to all processes) and
//! `deliver` (messages broadcast locally or received from peers) — and
//! disseminates messages with the *push* strategy: every message is forwarded
//! to all peers except the one it came from, with a *recently seen* cache
//! suppressing duplicates.
//!
//! The substrate is **consensus-friendly**: via the [`Semantics`] trait the
//! consensus protocol can plug in
//!
//! * **semantic filtering** — [`Semantics::validate`] is consulted before a
//!   message is sent to a peer, letting consensus drop messages that have
//!   become obsolete or redundant (§3.2), and
//! * **semantic aggregation** — [`Semantics::aggregate`] can replace several
//!   pending messages with a single message of equivalent meaning, and
//!   [`Semantics::disaggregate`] reverses reversible aggregations on receipt.
//!
//! Classic gossip is simply a node with [`NoSemantics`].
//!
//! The node is *sans-IO*: it is a pure state machine fed with
//! [`GossipNode::broadcast`] / [`GossipNode::on_receive`] calls, and drained
//! with [`GossipNode::take_outgoing`] / [`GossipNode::take_deliveries`]. The
//! same node runs unchanged on the deterministic simulator (`simnet` +
//! `testbed`) and on the threaded TCP runtime (`transport`).
//!
//! # Example
//!
//! ```
//! use semantic_gossip::{GossipConfig, GossipItem, GossipNode, MessageId, NodeId};
//!
//! #[derive(Clone, Debug, PartialEq)]
//! struct Ping(u64);
//! impl GossipItem for Ping {
//!     fn message_id(&self) -> MessageId { MessageId::from_u128(self.0 as u128) }
//!     fn wire_size(&self) -> usize { 8 }
//! }
//!
//! // A node with two peers, running classic gossip (no semantics).
//! let peers = vec![NodeId::new(1), NodeId::new(2)];
//! let mut node = GossipNode::classic(NodeId::new(0), peers, GossipConfig::default());
//!
//! node.broadcast(Ping(7));
//! assert_eq!(node.take_deliveries(), vec![Ping(7)]); // locally delivered
//! let out = node.take_outgoing();
//! assert_eq!(out.len(), 2); // pushed to both peers
//!
//! // Receiving the same message back is suppressed as a duplicate.
//! node.on_receive(NodeId::new(1), Ping(7));
//! assert!(node.take_deliveries().is_empty());
//! assert_eq!(node.stats().duplicates.get(), 1);
//! ```

pub mod cache;
pub mod codec;
pub mod config;
pub mod group;
pub mod id;
pub mod node;
pub mod plumtree;
pub mod pull;
pub mod semantics;
pub mod stats;

pub use cache::{DuplicateFilter, RecentCache, SlidingBloom};
pub use codec::{Reader, Wire, WireError};
pub use config::GossipConfig;
pub use group::{Grouped, GroupedSemantics, MAX_GROUPS};
pub use id::{MessageId, NodeId};
pub use node::{GossipItem, GossipNode, TraceTag};
pub use plumtree::{EagerLazyConfig, EagerLazyNode, Packet, PlumtreeStats};
pub use semantics::{NoSemantics, Semantics};
pub use stats::MessageStats;
