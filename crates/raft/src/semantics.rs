//! Semantic Gossip rules for raft-lite — the Paxos rules of §3.2
//! transplanted onto a different agreement protocol, as §5 of the paper
//! claims is straightforward.
//!
//! * **Filtering.** A peer "knows" commit index `i` once it was sent a
//!   Commit for `≥ i` or cumulative acks at `≥ i` from a majority. Acks and
//!   Commits at or below that point are dropped for the peer. Additionally —
//!   the cumulative-ack obsolescence rule — an ack from voter `v` at index
//!   `i` makes any still-pending ack from `v` at `≤ i` obsolete for that
//!   peer, the "message from a given round renders messages from previous
//!   rounds obsolete" pattern the paper generalizes from.
//! * **Aggregation.** Pending acks with identical `(term, index)` merge into
//!   one multi-voter ack; reversible via
//!   [`RaftMessage::disaggregate_acks`].

use std::collections::HashMap;

use semantic_gossip::{NodeId, Semantics};

use crate::message::RaftMessage;
use crate::types::{LogIndex, RaftConfig, Term};

/// Per-peer summary for filtering.
#[derive(Debug, Default)]
struct PeerState {
    /// Highest commit index this peer must know about.
    knows_commit: LogIndex,
    /// Per (term, voter): highest cumulative ack forwarded to the peer.
    sent_ack_high: HashMap<(Term, NodeId), LogIndex>,
}

impl PeerState {
    /// The commit index derivable from the acks sent to this peer.
    fn derivable_commit(&self, term: Term, quorum: usize) -> LogIndex {
        let mut highs: Vec<LogIndex> = self
            .sent_ack_high
            .iter()
            .filter(|((t, _), _)| *t == term)
            .map(|(_, &i)| i)
            .collect();
        if highs.len() < quorum {
            return LogIndex::ZERO;
        }
        highs.sort_unstable_by(|a, b| b.cmp(a));
        highs[quorum - 1]
    }
}

/// [`Semantics`] implementation for [`RaftMessage`].
#[derive(Debug)]
pub struct RaftSemantics {
    config: RaftConfig,
    filtering: bool,
    aggregation: bool,
    peers: HashMap<NodeId, PeerState>,
}

impl RaftSemantics {
    /// Both techniques enabled.
    pub fn full(config: RaftConfig) -> Self {
        RaftSemantics {
            config,
            filtering: true,
            aggregation: true,
            peers: HashMap::new(),
        }
    }

    /// Classic-equivalent instance with both techniques disabled (useful as
    /// a control in experiments).
    pub fn disabled(config: RaftConfig) -> Self {
        RaftSemantics {
            config,
            filtering: false,
            aggregation: false,
            peers: HashMap::new(),
        }
    }
}

impl Semantics<RaftMessage> for RaftSemantics {
    fn validate(&mut self, msg: &RaftMessage, peer: NodeId) -> bool {
        if !self.filtering {
            return true;
        }
        let quorum = self.config.quorum();
        match msg {
            RaftMessage::Ack {
                term,
                index,
                voters,
            } => {
                let state = self.peers.entry(peer).or_default();
                if *index <= state.knows_commit {
                    return false; // ack for an index the peer knows committed
                }
                // Obsolete if no voter's cumulative high would advance.
                let advances = voters.iter().any(|v| {
                    state
                        .sent_ack_high
                        .get(&(*term, *v))
                        .is_none_or(|&high| *index > high)
                });
                if !advances {
                    return false;
                }
                for v in voters {
                    let high = state
                        .sent_ack_high
                        .entry((*term, *v))
                        .or_insert(LogIndex::ZERO);
                    *high = (*high).max(*index);
                }
                let derivable = state.derivable_commit(*term, quorum);
                if derivable > state.knows_commit {
                    state.knows_commit = derivable;
                }
                true
            }
            RaftMessage::Commit { index, .. } => {
                let state = self.peers.entry(peer).or_default();
                if *index <= state.knows_commit {
                    return false;
                }
                state.knows_commit = *index;
                true
            }
            _ => true,
        }
    }

    fn aggregate(&mut self, pending: Vec<RaftMessage>, _peer: NodeId) -> Vec<RaftMessage> {
        if !self.aggregation {
            return pending;
        }
        // Merge acks sharing (term, index); keep everything else in place.
        let mut merged: HashMap<(Term, LogIndex), Vec<NodeId>> = HashMap::new();
        for msg in &pending {
            if let RaftMessage::Ack {
                term,
                index,
                voters,
            } = msg
            {
                merged.entry((*term, *index)).or_default().extend(voters);
            }
        }
        let mut emitted: std::collections::HashSet<(Term, LogIndex)> = Default::default();
        let mut out = Vec::with_capacity(pending.len());
        for msg in pending {
            match msg {
                RaftMessage::Ack { term, index, .. } => {
                    if emitted.insert((term, index)) {
                        let mut voters = merged.remove(&(term, index)).expect("indexed");
                        voters.sort_unstable();
                        voters.dedup();
                        out.push(RaftMessage::Ack {
                            term,
                            index,
                            voters,
                        });
                    }
                }
                other => out.push(other),
            }
        }
        out
    }

    fn disaggregate(&mut self, msg: RaftMessage) -> Vec<RaftMessage> {
        msg.disaggregate_acks()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const PEER: NodeId = NodeId::new(9);

    fn sem(n: usize) -> RaftSemantics {
        RaftSemantics::full(RaftConfig::new(n))
    }

    fn ack(term: u32, index: u64, voter: u32) -> RaftMessage {
        RaftMessage::Ack {
            term: Term::new(term),
            index: LogIndex::new(index),
            voters: vec![NodeId::new(voter)],
        }
    }

    fn commit(term: u32, index: u64) -> RaftMessage {
        RaftMessage::Commit {
            term: Term::new(term),
            index: LogIndex::new(index),
            sender: NodeId::new(0),
        }
    }

    #[test]
    fn commit_filters_covered_acks_and_commits() {
        let mut s = sem(5);
        assert!(s.validate(&commit(0, 5), PEER));
        assert!(!s.validate(&ack(0, 3, 1), PEER));
        assert!(!s.validate(&commit(0, 4), PEER));
        // Higher indices still flow.
        assert!(s.validate(&ack(0, 6, 1), PEER));
        assert!(s.validate(&commit(0, 7), PEER));
    }

    #[test]
    fn cumulative_ack_supersedes_older_acks_from_same_voter() {
        let mut s = sem(5);
        assert!(s.validate(&ack(0, 5, 1), PEER));
        // Older ack from the same voter is obsolete for this peer.
        assert!(!s.validate(&ack(0, 3, 1), PEER));
        // But a different voter's ack at 3 advances that voter's high.
        assert!(s.validate(&ack(0, 3, 2), PEER));
    }

    #[test]
    fn quorum_of_sent_acks_makes_commit_redundant() {
        let mut s = sem(3); // quorum 2
        assert!(s.validate(&ack(0, 4, 1), PEER));
        assert!(s.validate(&ack(0, 4, 2), PEER));
        // Peer can derive commit at 4: commit <= 4 redundant.
        assert!(!s.validate(&commit(0, 4), PEER));
        assert!(!s.validate(&ack(0, 4, 0), PEER));
        assert!(s.validate(&commit(0, 6), PEER));
    }

    #[test]
    fn appends_and_commands_always_pass() {
        let mut s = sem(3);
        s.validate(&commit(0, 9), PEER);
        let append = RaftMessage::Append {
            term: Term::ZERO,
            leader: NodeId::new(0),
            entry: crate::message::Entry {
                term: Term::ZERO,
                index: LogIndex::new(1),
                command: crate::types::Command::new(NodeId::new(0), 0, vec![]),
            },
        };
        assert!(s.validate(&append, PEER));
    }

    #[test]
    fn aggregation_merges_same_term_index() {
        let mut s = sem(5);
        let out = s.aggregate(vec![ack(0, 2, 3), ack(0, 2, 1), ack(0, 3, 1)], PEER);
        assert_eq!(out.len(), 2);
        match &out[0] {
            RaftMessage::Ack { voters, index, .. } => {
                assert_eq!(*index, LogIndex::new(2));
                assert_eq!(voters, &vec![NodeId::new(1), NodeId::new(3)]);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn disaggregate_reverses_aggregate() {
        let mut s = sem(5);
        let out = s.aggregate(vec![ack(0, 2, 1), ack(0, 2, 3)], PEER);
        let parts = s.disaggregate(out.into_iter().next().unwrap());
        assert_eq!(parts, vec![ack(0, 2, 1), ack(0, 2, 3)]);
    }

    #[test]
    fn disabled_semantics_is_transparent() {
        let mut s = RaftSemantics::disabled(RaftConfig::new(3));
        assert!(s.validate(&commit(0, 1), PEER));
        assert!(s.validate(&commit(0, 1), PEER));
        let pending = vec![ack(0, 1, 1), ack(0, 1, 2)];
        assert_eq!(s.aggregate(pending.clone(), PEER), pending);
    }
}
