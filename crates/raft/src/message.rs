//! raft-lite wire messages and their gossip identities.

use semantic_gossip::{GossipItem, MessageId, NodeId};

use crate::types::{Command, LogIndex, Term};

/// One replicated log entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Entry {
    /// The term in which the leader appended the entry.
    pub term: Term,
    /// The entry's position.
    pub index: LogIndex,
    /// The client command it carries.
    pub command: Command,
}

/// A raft-lite protocol message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RaftMessage {
    /// A client command forwarded toward the leader.
    ClientCommand {
        /// Forwarding process.
        forwarder: NodeId,
        /// The command.
        command: Command,
    },
    /// The leader replicates one entry (broadcast; one entry per message so
    /// gossip dedup works per entry).
    Append {
        /// Leader's term.
        term: Term,
        /// The leader.
        leader: NodeId,
        /// The replicated entry.
        entry: Entry,
    },
    /// Cumulative acknowledgement: every `voter` holds all entries of
    /// `term` up to and including `index`.
    ///
    /// `voters.len() > 1` is a semantically aggregated ack (reversible).
    Ack {
        /// The acknowledged term.
        term: Term,
        /// Highest contiguous index held.
        index: LogIndex,
        /// The acknowledging followers. Invariant: non-empty, sorted,
        /// duplicate-free.
        voters: Vec<NodeId>,
    },
    /// The leader announces that entries up to `index` are committed.
    Commit {
        /// The committing term.
        term: Term,
        /// Highest committed index.
        index: LogIndex,
        /// The announcing leader.
        sender: NodeId,
    },
}

impl RaftMessage {
    /// Splits an aggregated ack into per-voter acks (reversible rule).
    pub fn disaggregate_acks(self) -> Vec<RaftMessage> {
        match self {
            RaftMessage::Ack {
                term,
                index,
                voters,
            } if voters.len() > 1 => voters
                .into_iter()
                .map(|voter| RaftMessage::Ack {
                    term,
                    index,
                    voters: vec![voter],
                })
                .collect(),
            other => vec![other],
        }
    }

    /// Checks the ack-voters invariant.
    pub fn is_well_formed(&self) -> bool {
        match self {
            RaftMessage::Ack { voters, .. } => {
                !voters.is_empty() && voters.windows(2).all(|w| w[0] < w[1])
            }
            _ => true,
        }
    }
}

const KIND_SHIFT: u32 = 56;

fn id(kind: u64, high_extra: u64, low: u64) -> MessageId {
    debug_assert!(high_extra < (1 << KIND_SHIFT));
    MessageId::from_parts((kind << KIND_SHIFT) | high_extra, low)
}

impl GossipItem for RaftMessage {
    /// Structural ids, mirroring the Paxos scheme:
    /// `ClientCommand(origin, seq)`, `Append(term, index)`,
    /// `Ack(term₂₄, voter, index)` for single-voter acks (hash-extended for
    /// aggregates, which are disaggregated before dedup anyway),
    /// `Commit(term, index)`.
    fn message_id(&self) -> MessageId {
        match self {
            RaftMessage::ClientCommand { command, .. } => {
                id(0x11, command.id().origin.as_u32() as u64, command.id().seq)
            }
            RaftMessage::Append { term, entry, .. } => {
                id(0x12, term.as_u32() as u64, entry.index.as_u64())
            }
            RaftMessage::Ack {
                term,
                index,
                voters,
            } => {
                if voters.len() == 1 {
                    let high =
                        ((voters[0].as_u32() as u64) << 24) | (term.as_u32() as u64 & 0xff_ffff);
                    id(0x13, high, index.as_u64())
                } else {
                    let mut h = term.as_u32() as u64;
                    for v in voters {
                        h = h
                            .wrapping_mul(0x100_0000_01b3)
                            .wrapping_add(v.as_u32() as u64 + 1);
                    }
                    id(0x14, h & ((1 << KIND_SHIFT) - 1), index.as_u64())
                }
            }
            RaftMessage::Commit { term, index, .. } => {
                id(0x15, term.as_u32() as u64, index.as_u64())
            }
        }
    }

    fn wire_size(&self) -> usize {
        use semantic_gossip::codec::Wire;
        self.encoded_len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn cmd(seq: u64) -> Command {
        Command::new(NodeId::new(1), seq, vec![0; 8])
    }

    fn ack(term: u32, index: u64, voter: u32) -> RaftMessage {
        RaftMessage::Ack {
            term: Term::new(term),
            index: LogIndex::new(index),
            voters: vec![NodeId::new(voter)],
        }
    }

    #[test]
    fn ids_are_distinct_across_kinds_and_fields() {
        let msgs = [
            RaftMessage::ClientCommand {
                forwarder: NodeId::new(0),
                command: cmd(1),
            },
            RaftMessage::Append {
                term: Term::ZERO,
                leader: NodeId::new(0),
                entry: Entry {
                    term: Term::ZERO,
                    index: LogIndex::new(1),
                    command: cmd(1),
                },
            },
            ack(0, 1, 2),
            ack(0, 1, 3),
            ack(0, 2, 2),
            ack(1, 1, 2),
            RaftMessage::Commit {
                term: Term::ZERO,
                index: LogIndex::new(1),
                sender: NodeId::new(0),
            },
        ];
        let ids: HashSet<MessageId> = msgs.iter().map(|m| m.message_id()).collect();
        assert_eq!(ids.len(), msgs.len());
    }

    #[test]
    fn disaggregation_restores_single_ack_ids() {
        let agg = RaftMessage::Ack {
            term: Term::new(1),
            index: LogIndex::new(5),
            voters: vec![NodeId::new(2), NodeId::new(4)],
        };
        let parts = agg.disaggregate_acks();
        assert_eq!(parts.len(), 2);
        assert_eq!(parts[0].message_id(), ack(1, 5, 2).message_id());
        assert_eq!(parts[1].message_id(), ack(1, 5, 4).message_id());
    }

    #[test]
    fn well_formedness() {
        assert!(ack(0, 1, 2).is_well_formed());
        let bad = RaftMessage::Ack {
            term: Term::ZERO,
            index: LogIndex::ZERO,
            voters: vec![],
        };
        assert!(!bad.is_well_formed());
        let unsorted = RaftMessage::Ack {
            term: Term::ZERO,
            index: LogIndex::ZERO,
            voters: vec![NodeId::new(3), NodeId::new(1)],
        };
        assert!(!unsorted.is_well_formed());
    }

    #[test]
    fn wire_size_tracks_payload() {
        let small = RaftMessage::ClientCommand {
            forwarder: NodeId::new(0),
            command: Command::new(NodeId::new(0), 0, vec![0; 10]),
        };
        let big = RaftMessage::ClientCommand {
            forwarder: NodeId::new(0),
            command: Command::new(NodeId::new(0), 0, vec![0; 1000]),
        };
        assert!(big.wire_size() > small.wire_size() + 900);
    }
}
