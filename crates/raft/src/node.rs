//! The raft-lite node: leader and follower behind one handler.
//!
//! Fail-free path only (which is where the paper compares Raft and Paxos):
//! one leader per term appends entries; followers store them and send
//! *cumulative* acknowledgements (ack for index `i` means "I hold every
//! entry up to `i`"); everyone — not just the leader — commits an index once
//! a majority's cumulative acks reach it, exactly like Paxos learners
//! deciding from a majority of Phase 2b messages under gossip (§3.1).

use std::collections::{BTreeMap, HashMap};

use semantic_gossip::NodeId;

use crate::message::{Entry, RaftMessage};
use crate::types::{Command, CommandId, LogIndex, RaftConfig, Term};

/// One raft-lite process (sans-IO): feed it messages, collect broadcasts
/// and committed commands.
#[derive(Debug)]
pub struct RaftNode {
    id: NodeId,
    config: RaftConfig,
    term: Term,
    /// `Some` while this node leads `term`.
    leading: Option<LeaderState>,
    /// Entry store, possibly with gaps under reordering.
    log: BTreeMap<LogIndex, Entry>,
    /// Highest contiguous index this node holds (and has acked).
    acked: LogIndex,
    /// Highest index known committed.
    commit_index: LogIndex,
    /// Highest index delivered to the application (contiguous).
    delivered: LogIndex,
    /// Per-term cumulative ack highs per voter, for quorum commits.
    ack_high: HashMap<Term, HashMap<NodeId, LogIndex>>,
    /// Committed-but-undelivered output buffer.
    out: Vec<(LogIndex, Command)>,
    submit_seq: u64,
}

#[derive(Debug)]
struct LeaderState {
    next_index: LogIndex,
    proposed: std::collections::HashSet<CommandId>,
}

impl RaftNode {
    /// Creates a follower node.
    pub fn new(id: NodeId, config: RaftConfig) -> Self {
        assert!(id.as_index() < config.n, "id out of range");
        RaftNode {
            id,
            config,
            term: Term::ZERO,
            leading: None,
            log: BTreeMap::new(),
            acked: LogIndex::ZERO,
            commit_index: LogIndex::ZERO,
            delivered: LogIndex::ZERO,
            ack_high: HashMap::new(),
            out: Vec::new(),
            submit_seq: 0,
        }
    }

    /// This node's id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// The node's current term.
    pub fn term(&self) -> Term {
        self.term
    }

    /// Whether this node currently leads.
    pub fn is_leader(&self) -> bool {
        self.leading.is_some()
    }

    /// Highest index known committed.
    pub fn commit_index(&self) -> LogIndex {
        self.commit_index
    }

    /// Assumes leadership of `term` (the deployment's election substitute,
    /// like `start_round` in the Paxos crate).
    ///
    /// # Panics
    ///
    /// Panics if this node is not `term`'s leader or `term` is stale.
    pub fn become_leader(&mut self, term: Term) -> Vec<RaftMessage> {
        assert_eq!(term.leader(self.config.n), self.id, "not {term}'s leader");
        assert!(term >= self.term, "stale term");
        self.term = term;
        self.leading = Some(LeaderState {
            next_index: self.acked.next(),
            proposed: Default::default(),
        });
        Vec::new()
    }

    /// A client submits a payload at this node: replicated directly when
    /// leading, forwarded otherwise.
    pub fn submit(&mut self, payload: Vec<u8>) -> Vec<RaftMessage> {
        let command = Command::new(self.id, self.submit_seq, payload);
        self.submit_seq += 1;
        self.accept_command(command)
    }

    fn accept_command(&mut self, command: Command) -> Vec<RaftMessage> {
        let term = self.term;
        let leader = self.id;
        match self.leading.as_mut() {
            Some(state) => {
                if !state.proposed.insert(command.id()) {
                    return Vec::new();
                }
                let index = state.next_index;
                state.next_index = index.next();
                vec![RaftMessage::Append {
                    term,
                    leader,
                    entry: Entry {
                        term,
                        index,
                        command,
                    },
                }]
            }
            None => vec![RaftMessage::ClientCommand {
                forwarder: self.id,
                command,
            }],
        }
    }

    /// Handles one delivered message, returning broadcasts it triggers.
    pub fn handle(&mut self, msg: RaftMessage) -> Vec<RaftMessage> {
        match msg {
            RaftMessage::ClientCommand { command, .. } => {
                if self.is_leader() {
                    self.accept_command(command)
                } else {
                    Vec::new()
                }
            }
            RaftMessage::Append { term, entry, .. } => self.on_append(term, entry),
            RaftMessage::Ack {
                term,
                index,
                voters,
            } => {
                for voter in voters {
                    self.on_ack(term, index, voter);
                }
                self.try_commit()
            }
            RaftMessage::Commit { term, index, .. } => {
                self.observe_term(term);
                if index > self.commit_index {
                    self.commit_index = index;
                    self.deliver_ready();
                }
                Vec::new()
            }
        }
    }

    fn on_append(&mut self, term: Term, entry: Entry) -> Vec<RaftMessage> {
        if term < self.term {
            return Vec::new(); // stale leader
        }
        self.observe_term(term);
        // Store the entry; a higher-term entry for the same index wins.
        let replace = self
            .log
            .get(&entry.index)
            .is_none_or(|existing| entry.term > existing.term);
        if replace {
            self.log.insert(entry.index, entry);
        }
        // Advance the cumulative ack over the contiguous prefix.
        let before = self.acked;
        while self.log.contains_key(&self.acked.next()) {
            self.acked = self.acked.next();
        }
        self.deliver_ready();
        if self.acked > before {
            // Count our own ack locally too (gossip self-delivery would do
            // it as well, but direct counting keeps the node usable without
            // a loop-back).
            self.on_ack(self.term, self.acked, self.id);
            let mut out = vec![RaftMessage::Ack {
                term: self.term,
                index: self.acked,
                voters: vec![self.id],
            }];
            out.extend(self.try_commit());
            out
        } else {
            Vec::new()
        }
    }

    fn on_ack(&mut self, term: Term, index: LogIndex, voter: NodeId) {
        self.observe_term(term);
        if term != self.term {
            return; // only current-term acks may commit (Raft's commit rule)
        }
        let high = self
            .ack_high
            .entry(term)
            .or_default()
            .entry(voter)
            .or_insert(LogIndex::ZERO);
        *high = (*high).max(index);
    }

    /// Commits the quorum-th highest cumulative ack of the current term.
    fn try_commit(&mut self) -> Vec<RaftMessage> {
        let Some(highs) = self.ack_high.get(&self.term) else {
            return Vec::new();
        };
        let mut values: Vec<LogIndex> = highs.values().copied().collect();
        if values.len() < self.config.quorum() {
            return Vec::new();
        }
        values.sort_unstable_by(|a, b| b.cmp(a));
        let candidate = values[self.config.quorum() - 1];
        if candidate <= self.commit_index {
            return Vec::new();
        }
        self.commit_index = candidate;
        self.deliver_ready();
        if self.is_leader() {
            vec![RaftMessage::Commit {
                term: self.term,
                index: candidate,
                sender: self.id,
            }]
        } else {
            Vec::new()
        }
    }

    fn deliver_ready(&mut self) {
        while self.delivered < self.commit_index {
            let next = self.delivered.next();
            let Some(entry) = self.log.get(&next) else {
                break; // gap: the Append has not arrived yet
            };
            self.out.push((next, entry.command.clone()));
            self.delivered = next;
        }
    }

    fn observe_term(&mut self, term: Term) {
        if term > self.term {
            self.term = term;
            self.leading = None; // a newer term demotes this leader
        }
    }

    /// Drains commands committed and deliverable in log order (no gaps).
    pub fn take_committed(&mut self) -> Vec<(LogIndex, Command)> {
        std::mem::take(&mut self.out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cluster(n: usize) -> Vec<RaftNode> {
        let config = RaftConfig::new(n);
        (0..n as u32)
            .map(|i| RaftNode::new(NodeId::new(i), config.clone()))
            .collect()
    }

    /// Full-mesh broadcast until quiescence.
    fn settle(nodes: &mut [RaftNode], mut inflight: Vec<RaftMessage>) {
        let mut steps = 0;
        while let Some(msg) = inflight.pop() {
            steps += 1;
            assert!(steps < 1_000_000, "did not quiesce");
            for n in nodes.iter_mut() {
                inflight.extend(n.handle(msg.clone()));
            }
        }
    }

    #[test]
    fn replicates_and_commits_one_command() {
        let mut nodes = cluster(3);
        let mut inflight = nodes[0].become_leader(Term::ZERO);
        inflight.extend(nodes[0].submit(b"a".to_vec()));
        settle(&mut nodes, inflight);
        for n in nodes.iter_mut() {
            let committed = n.take_committed();
            assert_eq!(committed.len(), 1, "at {}", n.id());
            assert_eq!(committed[0].0, LogIndex::new(1));
            assert_eq!(committed[0].1.payload(), b"a");
        }
    }

    #[test]
    fn commands_from_followers_are_forwarded_and_ordered() {
        let mut nodes = cluster(5);
        let mut inflight = nodes[0].become_leader(Term::ZERO);
        for (i, node) in nodes.iter_mut().enumerate() {
            inflight.extend(node.submit(vec![i as u8]));
        }
        settle(&mut nodes, inflight);
        let reference: Vec<(LogIndex, Command)> = nodes[0].take_committed();
        assert_eq!(reference.len(), 5);
        for n in nodes[1..].iter_mut() {
            assert_eq!(n.take_committed(), reference, "divergence at {}", n.id());
        }
    }

    #[test]
    fn duplicate_forwarded_commands_replicate_once() {
        let mut nodes = cluster(3);
        let inflight = nodes[0].become_leader(Term::ZERO);
        settle(&mut nodes, inflight);
        let cmd = Command::new(NodeId::new(2), 0, vec![9]);
        let dup = RaftMessage::ClientCommand {
            forwarder: NodeId::new(2),
            command: cmd.clone(),
        };
        let mut inflight = nodes[0].handle(dup.clone());
        inflight.extend(nodes[0].handle(dup));
        settle(&mut nodes, inflight);
        assert_eq!(nodes[1].take_committed().len(), 1);
    }

    #[test]
    fn followers_commit_from_majority_acks_without_commit_message() {
        // Deliver Appends and Acks but suppress the leader's Commit.
        let mut nodes = cluster(3);
        let _ = nodes[0].become_leader(Term::ZERO);
        let append = nodes[0].submit(b"x".to_vec());
        assert_eq!(append.len(), 1);
        // Followers 1 and 2 receive the Append and produce acks.
        let ack1 = nodes[1].handle(append[0].clone());
        let ack2 = nodes[2].handle(append[0].clone());
        // Node 2 sees node 1's ack (plus its own): majority -> commits.
        for msg in ack1.iter().chain(ack2.iter()) {
            if matches!(msg, RaftMessage::Ack { .. }) {
                nodes[2].handle(msg.clone());
            }
        }
        assert_eq!(nodes[2].take_committed().len(), 1);
    }

    #[test]
    fn reordered_appends_stall_then_recover() {
        let mut nodes = cluster(3);
        let _ = nodes[0].become_leader(Term::ZERO);
        let a1 = nodes[0].submit(b"1".to_vec());
        let a2 = nodes[0].submit(b"2".to_vec());
        // Follower 1 gets entry 2 first: no ack advance yet.
        assert!(nodes[1].handle(a2[0].clone()).is_empty());
        // Then entry 1 arrives: cumulative ack jumps to index 2.
        let acks = nodes[1].handle(a1[0].clone());
        match &acks[0] {
            RaftMessage::Ack { index, .. } => assert_eq!(*index, LogIndex::new(2)),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn newer_term_demotes_old_leader() {
        let mut nodes = cluster(3);
        let _ = nodes[0].become_leader(Term::ZERO);
        assert!(nodes[0].is_leader());
        // A term-1 append (leader = node 1) demotes node 0.
        let entry = Entry {
            term: Term::new(1),
            index: LogIndex::new(1),
            command: Command::new(NodeId::new(1), 0, vec![1]),
        };
        nodes[0].handle(RaftMessage::Append {
            term: Term::new(1),
            leader: NodeId::new(1),
            entry,
        });
        assert!(!nodes[0].is_leader());
        assert_eq!(nodes[0].term(), Term::new(1));
    }

    #[test]
    fn stale_term_appends_ignored() {
        let mut nodes = cluster(3);
        nodes[1].handle(RaftMessage::Commit {
            term: Term::new(2),
            index: LogIndex::ZERO,
            sender: NodeId::new(2),
        });
        let stale = RaftMessage::Append {
            term: Term::ZERO,
            leader: NodeId::new(0),
            entry: Entry {
                term: Term::ZERO,
                index: LogIndex::new(1),
                command: Command::new(NodeId::new(0), 0, vec![1]),
            },
        };
        assert!(nodes[1].handle(stale).is_empty());
    }

    #[test]
    fn aggregated_acks_commit_in_one_message() {
        let mut nodes = cluster(5);
        let _ = nodes[0].become_leader(Term::ZERO);
        let append = nodes[0].submit(b"x".to_vec());
        nodes[4].handle(append[0].clone());
        // An aggregated ack from 3 voters reaches quorum at once.
        let agg = RaftMessage::Ack {
            term: Term::ZERO,
            index: LogIndex::new(1),
            voters: vec![NodeId::new(1), NodeId::new(2), NodeId::new(3)],
        };
        nodes[4].handle(agg);
        assert_eq!(nodes[4].take_committed().len(), 1);
    }

    #[test]
    #[should_panic(expected = "not t1's leader")]
    fn wrong_leader_panics() {
        let mut nodes = cluster(3);
        nodes[0].become_leader(Term::new(1));
    }
}
