//! Core raft-lite types.

use std::fmt;
use std::sync::Arc;

use semantic_gossip::NodeId;

/// A Raft term: one leader per term; higher terms supersede lower ones
/// (the analogue of a Paxos round).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Term(u32);

impl Term {
    /// The first term.
    pub const ZERO: Term = Term(0);

    /// Builds a term.
    pub const fn new(t: u32) -> Self {
        Term(t)
    }

    /// Raw value.
    pub const fn as_u32(self) -> u32 {
        self.0
    }

    /// The next term.
    pub const fn next(self) -> Term {
        Term(self.0 + 1)
    }

    /// The leader of this term among `n` processes (`term mod n`).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn leader(self, n: usize) -> NodeId {
        assert!(n > 0, "leader of an empty system");
        NodeId::new(self.0 % n as u32)
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// A position in the replicated log (1-based; 0 means "nothing").
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct LogIndex(u64);

impl LogIndex {
    /// "Before the first entry".
    pub const ZERO: LogIndex = LogIndex(0);

    /// Builds an index.
    pub const fn new(i: u64) -> Self {
        LogIndex(i)
    }

    /// Raw value.
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// The next index.
    pub const fn next(self) -> LogIndex {
        LogIndex(self.0 + 1)
    }
}

impl fmt::Display for LogIndex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// Unique id of a client command: submitting process + sequence number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CommandId {
    /// Process where the command entered the system.
    pub origin: NodeId,
    /// Per-origin sequence number.
    pub seq: u64,
}

impl fmt::Display for CommandId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}#{}", self.origin, self.seq)
    }
}

/// A client command with a reference-counted payload (cheap to clone along
/// gossip fan-out).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Command {
    id: CommandId,
    payload: Arc<Vec<u8>>,
}

impl Command {
    /// Creates a command.
    pub fn new(origin: NodeId, seq: u64, payload: Vec<u8>) -> Self {
        Command {
            id: CommandId { origin, seq },
            payload: Arc::new(payload),
        }
    }

    /// The command's id.
    pub fn id(&self) -> CommandId {
        self.id
    }

    /// The payload bytes.
    pub fn payload(&self) -> &[u8] {
        &self.payload
    }
}

/// Static deployment configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RaftConfig {
    /// Number of processes.
    pub n: usize,
}

impl RaftConfig {
    /// Configuration for `n` processes.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "a deployment needs processes");
        RaftConfig { n }
    }

    /// Majority quorum size.
    pub fn quorum(&self) -> usize {
        self.n / 2 + 1
    }

    /// Whether `count` distinct processes form a majority.
    pub fn is_quorum(&self, count: usize) -> bool {
        count >= self.quorum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn term_leader_rotates() {
        assert_eq!(Term::ZERO.leader(3), NodeId::new(0));
        assert_eq!(Term::new(4).leader(3), NodeId::new(1));
        assert_eq!(Term::new(2).next(), Term::new(3));
    }

    #[test]
    fn log_index_ordering() {
        assert!(LogIndex::new(2) > LogIndex::new(1));
        assert_eq!(LogIndex::ZERO.next(), LogIndex::new(1));
        assert_eq!(LogIndex::new(7).to_string(), "#7");
    }

    #[test]
    fn command_identity_and_payload_sharing() {
        let c = Command::new(NodeId::new(2), 9, vec![1, 2, 3]);
        assert_eq!(c.id().origin, NodeId::new(2));
        assert_eq!(c.payload(), &[1, 2, 3]);
        let d = c.clone();
        assert!(Arc::ptr_eq(&c.payload, &d.payload));
        assert_eq!(c.id().to_string(), "p2#9");
    }

    #[test]
    fn quorum_sizes() {
        assert_eq!(RaftConfig::new(3).quorum(), 2);
        assert_eq!(RaftConfig::new(5).quorum(), 3);
        assert!(RaftConfig::new(5).is_quorum(3));
        assert!(!RaftConfig::new(5).is_quorum(2));
    }

    #[test]
    #[should_panic(expected = "needs processes")]
    fn zero_processes_panics() {
        RaftConfig::new(0);
    }
}
