//! Binary wire codec for raft-lite messages (same varint-based format as
//! the Paxos crate), so the protocol can run over the TCP transport.

use semantic_gossip::codec::{
    decode_seq, encode_seq, put_byte_string, seq_len, varint_len, Reader, Wire, WireError,
};
use semantic_gossip::NodeId;

use crate::message::{Entry, RaftMessage};
use crate::types::{Command, LogIndex, Term};

impl Wire for Term {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.as_u32().encode(buf);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(Term::new(u32::decode(r)?))
    }
    fn encoded_len(&self) -> usize {
        self.as_u32().encoded_len()
    }
}

impl Wire for LogIndex {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.as_u64().encode(buf);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(LogIndex::new(u64::decode(r)?))
    }
    fn encoded_len(&self) -> usize {
        self.as_u64().encoded_len()
    }
}

impl Wire for Command {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.id().origin.encode(buf);
        self.id().seq.encode(buf);
        put_byte_string(buf, self.payload());
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let origin = NodeId::decode(r)?;
        let seq = u64::decode(r)?;
        let payload = r.byte_string()?;
        Ok(Command::new(origin, seq, payload))
    }
    fn encoded_len(&self) -> usize {
        self.id().origin.encoded_len()
            + self.id().seq.encoded_len()
            + varint_len(self.payload().len() as u64)
            + self.payload().len()
    }
}

impl Wire for Entry {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.term.encode(buf);
        self.index.encode(buf);
        self.command.encode(buf);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(Entry {
            term: Term::decode(r)?,
            index: LogIndex::decode(r)?,
            command: Command::decode(r)?,
        })
    }
    fn encoded_len(&self) -> usize {
        self.term.encoded_len() + self.index.encoded_len() + self.command.encoded_len()
    }
}

const TAG_CLIENT: u8 = 1;
const TAG_APPEND: u8 = 2;
const TAG_ACK: u8 = 3;
const TAG_COMMIT: u8 = 4;

impl Wire for RaftMessage {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            RaftMessage::ClientCommand { forwarder, command } => {
                buf.push(TAG_CLIENT);
                forwarder.encode(buf);
                command.encode(buf);
            }
            RaftMessage::Append {
                term,
                leader,
                entry,
            } => {
                buf.push(TAG_APPEND);
                term.encode(buf);
                leader.encode(buf);
                entry.encode(buf);
            }
            RaftMessage::Ack {
                term,
                index,
                voters,
            } => {
                buf.push(TAG_ACK);
                term.encode(buf);
                index.encode(buf);
                encode_seq(voters, buf);
            }
            RaftMessage::Commit {
                term,
                index,
                sender,
            } => {
                buf.push(TAG_COMMIT);
                term.encode(buf);
                index.encode(buf);
                sender.encode(buf);
            }
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let msg = match r.u8()? {
            TAG_CLIENT => RaftMessage::ClientCommand {
                forwarder: NodeId::decode(r)?,
                command: Command::decode(r)?,
            },
            TAG_APPEND => RaftMessage::Append {
                term: Term::decode(r)?,
                leader: NodeId::decode(r)?,
                entry: Entry::decode(r)?,
            },
            TAG_ACK => RaftMessage::Ack {
                term: Term::decode(r)?,
                index: LogIndex::decode(r)?,
                voters: decode_seq(r)?,
            },
            TAG_COMMIT => RaftMessage::Commit {
                term: Term::decode(r)?,
                index: LogIndex::decode(r)?,
                sender: NodeId::decode(r)?,
            },
            t => return Err(WireError::InvalidTag(t)),
        };
        if !msg.is_well_formed() {
            return Err(WireError::Invalid("malformed ack voters"));
        }
        Ok(msg)
    }

    fn encoded_len(&self) -> usize {
        1 + match self {
            RaftMessage::ClientCommand { forwarder, command } => {
                forwarder.encoded_len() + command.encoded_len()
            }
            RaftMessage::Append {
                term,
                leader,
                entry,
            } => term.encoded_len() + leader.encoded_len() + entry.encoded_len(),
            RaftMessage::Ack {
                term,
                index,
                voters,
            } => term.encoded_len() + index.encoded_len() + seq_len(voters),
            RaftMessage::Commit {
                term,
                index,
                sender,
            } => term.encoded_len() + index.encoded_len() + sender.encoded_len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples() -> Vec<RaftMessage> {
        let command = Command::new(NodeId::new(3), 9, vec![0xEE; 100]);
        vec![
            RaftMessage::ClientCommand {
                forwarder: NodeId::new(1),
                command: command.clone(),
            },
            RaftMessage::Append {
                term: Term::new(2),
                leader: NodeId::new(0),
                entry: Entry {
                    term: Term::new(2),
                    index: LogIndex::new(7),
                    command: command.clone(),
                },
            },
            RaftMessage::Ack {
                term: Term::new(2),
                index: LogIndex::new(7),
                voters: vec![NodeId::new(1), NodeId::new(4), NodeId::new(9)],
            },
            RaftMessage::Commit {
                term: Term::new(2),
                index: LogIndex::new(7),
                sender: NodeId::new(0),
            },
        ]
    }

    #[test]
    fn round_trip_all_variants() {
        for msg in samples() {
            let bytes = msg.to_bytes();
            assert_eq!(bytes.len(), msg.encoded_len(), "len mismatch for {msg:?}");
            assert_eq!(RaftMessage::from_bytes(&bytes).unwrap(), msg);
        }
    }

    #[test]
    fn unknown_tag_rejected() {
        assert!(matches!(
            RaftMessage::from_bytes(&[77]),
            Err(WireError::InvalidTag(77))
        ));
    }

    #[test]
    fn malformed_ack_rejected() {
        // Hand-craft an ack with unsorted voters.
        let mut buf = vec![TAG_ACK];
        Term::new(0).encode(&mut buf);
        LogIndex::new(1).encode(&mut buf);
        encode_seq(&[NodeId::new(5), NodeId::new(1)], &mut buf);
        assert!(matches!(
            RaftMessage::from_bytes(&buf),
            Err(WireError::Invalid(_))
        ));
    }

    #[test]
    fn truncated_input_rejected() {
        let bytes = samples()[1].to_bytes();
        assert!(RaftMessage::from_bytes(&bytes[..bytes.len() - 3]).is_err());
    }

    #[test]
    fn command_payload_round_trips() {
        let c = Command::new(NodeId::new(7), 42, b"payload".to_vec());
        let decoded = Command::from_bytes(&c.to_bytes()).unwrap();
        assert_eq!(decoded, c);
        assert_eq!(decoded.payload(), b"payload");
    }
}
