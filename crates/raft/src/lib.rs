//! **raft-lite** — a Raft-style replication protocol on the semantic gossip
//! substrate.
//!
//! Section 5 of *Gossip Consensus* argues that "in the absence of failures,
//! the operation of Raft and Paxos are identical: the leader broadcasts
//! values, that must be acknowledged by a majority of processes. This makes
//! the semantic extensions proposed for the regular operation of Paxos
//! easily applicable to a gossip-based Raft deployment." This crate makes
//! that claim executable: a compact leader-based log-replication protocol
//! (terms, append entries, cumulative acknowledgements, commit notices)
//! whose messages implement [`semantic_gossip::GossipItem`], together with
//! [`RaftSemantics`] — filtering and aggregation rules in the spirit of
//! §3.2:
//!
//! * **filtering** — a commit notice supersedes the acks that led to it;
//!   once a peer was sent a quorum of acks at index ≥ i (or a commit notice
//!   for ≥ i), further acks and notices for ≤ i are redundant. Because acks
//!   are *cumulative*, a newer ack from the same follower also makes that
//!   follower's older acks obsolete — the round-based obsolescence rule the
//!   paper sketches for "agreement protocols based on rounds";
//! * **aggregation** — identical `(term, index)` acks from different
//!   followers merge into one multi-voter ack, reversibly.
//!
//! The protocol is sans-IO like the Paxos crate; the integration test
//! `tests/raft_gossip.rs` runs it over the same gossip meshes and measures
//! what the semantics save.
//!
//! # Example
//!
//! ```
//! use raft_lite::{RaftConfig, RaftNode};
//! use semantic_gossip::NodeId;
//!
//! let config = RaftConfig::new(3);
//! let mut nodes: Vec<RaftNode> = (0..3u32)
//!     .map(|i| RaftNode::new(NodeId::new(i), config.clone()))
//!     .collect();
//!
//! // Node 0 leads term 0 and replicates one command.
//! let mut inflight = nodes[0].become_leader(raft_lite::Term::ZERO);
//! inflight.extend(nodes[0].submit(b"cmd".to_vec()));
//! while let Some(msg) = inflight.pop() {
//!     for n in nodes.iter_mut() {
//!         inflight.extend(n.handle(msg.clone()));
//!     }
//! }
//! for n in nodes.iter_mut() {
//!     assert_eq!(n.take_committed().len(), 1);
//! }
//! ```

pub mod codec;
pub mod message;
pub mod node;
pub mod semantics;
pub mod types;

pub use message::RaftMessage;
pub use node::RaftNode;
pub use semantics::RaftSemantics;
pub use types::{Command, CommandId, LogIndex, RaftConfig, Term};
