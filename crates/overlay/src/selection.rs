//! The paper's overlay-selection procedure (§4.6, Figure 7).
//!
//! The overlay interconnecting the processes — in particular the effective
//! RTTs between the coordinator and the rest — dictates the baseline latency
//! of Paxos, because deciding a value requires a round-trip from the
//! coordinator to a majority. Different random overlays therefore have
//! different baseline latencies. To make its core experiments
//! representative, the paper generates **100 random overlays**, measures each
//! one under minimal load, totally orders them by `(median coordinator RTT,
//! measured latency)`, and enforces the **median** overlay everywhere.

use serde::{Deserialize, Serialize};
use simnet::{RegionMap, SimDuration};

use crate::graph::Graph;

/// The median RTT from the coordinator to all other processes, where the RTT
/// to a process is twice its weighted shortest-path distance through the
/// overlay under the WAN latency matrix.
///
/// Returns `None` when the overlay is disconnected (some process unreachable)
/// or has fewer than two nodes.
///
/// # Panics
///
/// Panics if the graph and region map disagree on the number of processes.
///
/// # Example
///
/// ```
/// use overlay::{median_coordinator_rtt, Graph};
/// use simnet::RegionMap;
///
/// let g = Graph::from_edges(13, (0..12).map(|i| (i, i + 1)));
/// let map = RegionMap::paper_placement(13);
/// assert!(median_coordinator_rtt(&g, &map, 0).is_some());
/// ```
pub fn median_coordinator_rtt(
    graph: &Graph,
    regions: &RegionMap,
    coordinator: usize,
) -> Option<SimDuration> {
    assert_eq!(
        graph.len(),
        regions.len(),
        "overlay and placement must have the same size"
    );
    if graph.len() < 2 {
        return None;
    }
    let dist = graph.dijkstra(coordinator, |a, b| regions.one_way(a, b));
    let mut rtts: Vec<SimDuration> = Vec::with_capacity(graph.len() - 1);
    for (node, d) in dist.into_iter().enumerate() {
        if node == coordinator {
            continue;
        }
        rtts.push(d?.saturating_mul(2));
    }
    rtts.sort_unstable();
    Some(rtts[(rtts.len() - 1) / 2])
}

/// One overlay candidate with its two selection keys.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct OverlayMeasurement {
    /// Index of the overlay among the generated candidates (its seed slot).
    pub overlay_id: usize,
    /// Median coordinator RTT through the overlay (selection key 1).
    pub median_rtt: SimDuration,
    /// Average client latency measured under minimal workload (selection
    /// key 2).
    pub measured_latency: SimDuration,
}

/// Totally orders overlay candidates by `(median RTT, measured latency,
/// overlay id)` — the paper's ordering plus the id as a deterministic final
/// tie-break — and returns the ordered list together with the index *into
/// the ordered list* of the selected median overlay.
///
/// Returns `None` when `measurements` is empty.
pub fn rank_overlays(
    mut measurements: Vec<OverlayMeasurement>,
) -> Option<(Vec<OverlayMeasurement>, usize)> {
    if measurements.is_empty() {
        return None;
    }
    measurements.sort_by(|a, b| {
        a.median_rtt
            .cmp(&b.median_rtt)
            .then(a.measured_latency.cmp(&b.measured_latency))
            .then(a.overlay_id.cmp(&b.overlay_id))
    });
    let median_pos = (measurements.len() - 1) / 2;
    Some((measurements, median_pos))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random::{connected_k_out, paper_fanout};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn ms(v: u64) -> SimDuration {
        SimDuration::from_millis(v)
    }

    fn meas(id: usize, rtt: u64, lat: u64) -> OverlayMeasurement {
        OverlayMeasurement {
            overlay_id: id,
            median_rtt: ms(rtt),
            measured_latency: ms(lat),
        }
    }

    #[test]
    fn median_rtt_on_star_is_direct_rtt() {
        // Star around the coordinator: RTT to each node is 2 * one-way.
        let n = 13;
        let g = Graph::from_edges(n, (1..n).map(|i| (0, i)));
        let map = RegionMap::paper_placement(n);
        let rtt = median_coordinator_rtt(&g, &map, 0).unwrap();
        // Sorted one-way Virginia latencies (ms): 7,30,33,38,39,44,58,73,87,93,98,105
        // Median of 12 values (lower) = 6th = 44 -> RTT 88ms.
        assert_eq!(rtt.as_millis(), 88);
    }

    #[test]
    fn median_rtt_none_when_disconnected() {
        let g = Graph::from_edges(4, [(0, 1)]);
        let map = RegionMap::paper_placement(4);
        assert_eq!(median_coordinator_rtt(&g, &map, 0), None);
    }

    #[test]
    fn median_rtt_uses_multi_hop_paths() {
        // Chain 0-1-2: RTT to 2 goes through 1.
        let g = Graph::from_edges(3, [(0, 1), (1, 2)]);
        let map = RegionMap::paper_placement(3); // 0:NVa, 1:Canada, 2:NCal
        let rtt = median_coordinator_rtt(&g, &map, 0).unwrap();
        // one-way 0->1 = 7ms, 0->1->2 = 7+35 = 42ms; RTTs 14, 84; median(lower) = 14.
        assert_eq!(rtt.as_millis(), 14);
    }

    #[test]
    fn rank_orders_by_rtt_then_latency() {
        let (ordered, median) = rank_overlays(vec![
            meas(0, 50, 200),
            meas(1, 40, 300),
            meas(2, 40, 100),
            meas(3, 60, 100),
            meas(4, 45, 150),
        ])
        .unwrap();
        let ids: Vec<usize> = ordered.iter().map(|m| m.overlay_id).collect();
        assert_eq!(ids, vec![2, 1, 4, 0, 3]);
        assert_eq!(median, 2); // 5 candidates -> position 2
        assert_eq!(ordered[median].overlay_id, 4);
    }

    #[test]
    fn rank_empty_is_none() {
        assert_eq!(rank_overlays(Vec::new()), None);
    }

    #[test]
    fn rank_is_deterministic_under_full_ties() {
        let (ordered, _) =
            rank_overlays(vec![meas(2, 10, 10), meas(0, 10, 10), meas(1, 10, 10)]).unwrap();
        let ids: Vec<usize> = ordered.iter().map(|m| m.overlay_id).collect();
        assert_eq!(ids, vec![0, 1, 2]);
    }

    #[test]
    fn hundred_paper_overlays_have_spread_rtts() {
        // Reproduces the Figure 7 setup cheaply: 100 overlays for n = 53.
        let n = 53;
        let map = RegionMap::paper_placement(n);
        let mut rtts = Vec::new();
        for seed in 0..100u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let g = connected_k_out(n, paper_fanout(n), &mut rng, 50).unwrap();
            rtts.push(median_coordinator_rtt(&g, &map, 0).unwrap());
        }
        let min = rtts.iter().min().unwrap();
        let max = rtts.iter().max().unwrap();
        assert!(
            max > min,
            "different overlays should have different median RTTs"
        );
    }
}
