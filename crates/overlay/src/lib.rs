//! Random overlay networks for gossip-based consensus.
//!
//! In the paper's Gossip and Semantic Gossip setups, each process opens
//! connections to a random subset of `k` processes; connections are
//! bi-directional, so processes end up with `2k` peers in expectation —
//! chosen so every process talks to about `log₂ n` peers, which keeps a
//! random overlay connected with high probability (§4.2, citing Erdős).
//!
//! This crate provides:
//!
//! * [`Graph`] — a compact undirected graph,
//! * [`random_k_out`] — the paper's overlay generator,
//! * connectivity and hop-distance queries ([`Graph::is_connected`],
//!   [`Graph::bfs_hops`]),
//! * weighted shortest paths ([`Graph::dijkstra`]) for computing the
//!   coordinator RTTs that drive Figures 7 and 8, and
//! * [`selection`] — the paper's procedure for picking the *median* overlay
//!   out of 100 random candidates (§4.6).
//!
//! # Example
//!
//! ```
//! use overlay::{paper_fanout, random_k_out};
//! use rand::SeedableRng;
//!
//! let n = 105;
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let g = random_k_out(n, paper_fanout(n), &mut rng);
//! assert!(g.is_connected());
//! ```

pub mod graph;
pub mod random;
pub mod selection;
pub mod stats;

pub use graph::Graph;
pub use random::{connected_k_out, paper_fanout, random_k_out};
pub use selection::{median_coordinator_rtt, rank_overlays, OverlayMeasurement};
pub use stats::{topology_stats, TopologyStats};
