//! Topology statistics for overlay networks.
//!
//! The paper characterizes its overlays by the median coordinator RTT
//! (§4.6); these helpers add the standard structural measures — degree
//! distribution, hop diameter, average path length and clustering — useful
//! when comparing generated overlays against the `2k ≈ log₂ n` design
//! point.

use serde::{Deserialize, Serialize};

use crate::graph::Graph;

/// Structural summary of one overlay.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TopologyStats {
    /// Number of nodes.
    pub nodes: usize,
    /// Number of undirected edges.
    pub edges: usize,
    /// Minimum degree.
    pub min_degree: usize,
    /// Mean degree (`2·edges / nodes`).
    pub mean_degree: f64,
    /// Maximum degree.
    pub max_degree: usize,
    /// Eccentricity diameter in hops (`None` if disconnected).
    pub diameter_hops: Option<usize>,
    /// Average shortest-path length in hops over all ordered pairs
    /// (`None` if disconnected).
    pub mean_path_hops: Option<f64>,
    /// Global clustering coefficient (triangle density).
    pub clustering: f64,
}

/// Computes the structural summary of `graph`.
///
/// # Example
///
/// ```
/// use overlay::{topology_stats, Graph};
///
/// let ring = Graph::from_edges(6, (0..6).map(|i| (i, (i + 1) % 6)));
/// let stats = topology_stats(&ring);
/// assert_eq!(stats.mean_degree, 2.0);
/// assert_eq!(stats.diameter_hops, Some(3));
/// assert_eq!(stats.clustering, 0.0); // rings have no triangles
/// ```
pub fn topology_stats(graph: &Graph) -> TopologyStats {
    let n = graph.len();
    let degrees: Vec<usize> = (0..n).map(|v| graph.degree(v)).collect();

    // Path statistics from per-source BFS.
    let mut diameter = Some(0usize);
    let mut total_hops: u64 = 0;
    let mut pairs: u64 = 0;
    for s in 0..n {
        for d in graph.bfs_hops(s).into_iter().flatten() {
            if d > 0 {
                total_hops += d as u64;
                pairs += 1;
            }
            if let Some(cur) = diameter {
                diameter = Some(cur.max(d));
            }
        }
    }
    let connected = n <= 1 || pairs == (n * (n - 1)) as u64;
    let diameter_hops = if connected { diameter } else { None };
    let mean_path_hops = if connected && pairs > 0 {
        Some(total_hops as f64 / pairs as f64)
    } else if connected {
        Some(0.0)
    } else {
        None
    };

    // Global clustering: 3·triangles / open-or-closed triplets.
    let mut triangles = 0u64;
    let mut triplets = 0u64;
    for v in 0..n {
        let nbrs = graph.neighbors(v);
        let k = nbrs.len() as u64;
        triplets += k * k.saturating_sub(1) / 2;
        for (i, &a) in nbrs.iter().enumerate() {
            for &b in &nbrs[i + 1..] {
                if graph.has_edge(a, b) {
                    triangles += 1;
                }
            }
        }
    }
    let clustering = if triplets == 0 {
        0.0
    } else {
        // Each triangle is counted once per corner = 3 times total.
        triangles as f64 / triplets as f64
    };

    TopologyStats {
        nodes: n,
        edges: graph.num_edges(),
        min_degree: degrees.iter().copied().min().unwrap_or(0),
        mean_degree: graph.mean_degree(),
        max_degree: degrees.iter().copied().max().unwrap_or(0),
        diameter_hops,
        mean_path_hops,
        clustering,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random::{connected_k_out, paper_fanout};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn complete_graph_stats() {
        let n = 5;
        let mut g = Graph::new(n);
        for a in 0..n {
            for b in a + 1..n {
                g.add_edge(a, b);
            }
        }
        let s = topology_stats(&g);
        assert_eq!(s.edges, 10);
        assert_eq!(s.min_degree, 4);
        assert_eq!(s.max_degree, 4);
        assert_eq!(s.diameter_hops, Some(1));
        assert_eq!(s.mean_path_hops, Some(1.0));
        assert!((s.clustering - 1.0).abs() < 1e-12);
    }

    #[test]
    fn line_graph_stats() {
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3)]);
        let s = topology_stats(&g);
        assert_eq!(s.diameter_hops, Some(3));
        assert_eq!(s.min_degree, 1);
        assert_eq!(s.clustering, 0.0);
        // Pairs and mean path: distances 1,2,3,1,1,2 (each direction).
        assert!((s.mean_path_hops.unwrap() - 10.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn disconnected_graph_has_no_diameter() {
        let g = Graph::from_edges(4, [(0, 1), (2, 3)]);
        let s = topology_stats(&g);
        assert_eq!(s.diameter_hops, None);
        assert_eq!(s.mean_path_hops, None);
    }

    #[test]
    fn triangle_has_full_clustering() {
        let g = Graph::from_edges(3, [(0, 1), (1, 2), (2, 0)]);
        let s = topology_stats(&g);
        assert!((s.clustering - 1.0).abs() < 1e-12);
    }

    #[test]
    fn paper_overlay_matches_design_point() {
        // Mean degree ≈ 2k ≈ log2(n), diameter small (O(log n)).
        let n = 105;
        let mut rng = StdRng::seed_from_u64(4);
        let g = connected_k_out(n, paper_fanout(n), &mut rng, 50).unwrap();
        let s = topology_stats(&g);
        assert!(
            s.mean_degree >= 5.0 && s.mean_degree <= 7.0,
            "{}",
            s.mean_degree
        );
        let d = s.diameter_hops.unwrap();
        assert!(d <= 6, "diameter {d} too large for a log-degree overlay");
        // Random overlays are locally tree-like: low clustering.
        assert!(s.clustering < 0.2, "{}", s.clustering);
    }

    #[test]
    fn singleton_graph() {
        let s = topology_stats(&Graph::new(1));
        assert_eq!(s.diameter_hops, Some(0));
        assert_eq!(s.mean_path_hops, Some(0.0));
    }
}
