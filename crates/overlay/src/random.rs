//! The paper's random overlay generator.
//!
//! At system setup each process opens connections to `k` processes chosen
//! uniformly at random; channels are bi-directional, so a process's peer set
//! contains both the `k` peers it chose and everyone who chose it — `2k`
//! peers in expectation (§3.3). The paper sets `2k ≈ log₂ n`, which keeps the
//! overlay connected with high probability (§4.2).

use rand::Rng;

use crate::graph::Graph;

/// The paper's per-process connection count `k` for a system of `n`
/// processes: `2k ≈ log₂ n`, never below 2 (so the overlay has enough
/// redundancy even for tiny systems).
///
/// # Example
///
/// ```
/// assert_eq!(overlay::paper_fanout(13), 2);  // log2(13) ≈ 3.7
/// assert_eq!(overlay::paper_fanout(53), 3);  // log2(53) ≈ 5.7
/// assert_eq!(overlay::paper_fanout(105), 3); // log2(105) ≈ 6.7
/// ```
pub fn paper_fanout(n: usize) -> usize {
    if n <= 1 {
        return 0;
    }
    let k = ((n as f64).log2() / 2.0).round() as usize;
    k.max(2).min(n - 1)
}

/// Generates a random `k`-out overlay over `n` nodes: every node opens
/// connections to `k` distinct random peers; edges are undirected.
///
/// Opened connections that coincide (both `a→b` and `b→a` chosen) collapse
/// into a single edge, exactly as two processes dialing each other share one
/// channel. The result is *not* guaranteed connected — callers that need
/// connectivity (all experiments do) regenerate until [`Graph::is_connected`]
/// holds, mirroring the paper's requirement that "temporary disconnections
/// ... do not compromise the network connectivity". With `k = paper_fanout(n)`
/// disconnected samples are rare.
///
/// # Panics
///
/// Panics if `k >= n` (a node cannot open `k` distinct connections).
///
/// # Example
///
/// ```
/// use rand::SeedableRng;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let g = overlay::random_k_out(53, 3, &mut rng);
/// // Every node opened 3 connections, so min degree >= 3 and the mean
/// // degree is at most 6 (ties collapse).
/// assert!((0..53).all(|v| g.degree(v) >= 3));
/// ```
pub fn random_k_out<R: Rng>(n: usize, k: usize, rng: &mut R) -> Graph {
    assert!(
        n == 0 || k < n,
        "k must be smaller than the number of nodes"
    );
    let mut g = Graph::new(n);
    let mut chosen: Vec<usize> = Vec::with_capacity(k);
    for a in 0..n {
        // Choose k distinct peers != a by rejection sampling (k << n).
        chosen.clear();
        while chosen.len() < k {
            let b = rng.gen_range(0..n);
            if b != a && !chosen.contains(&b) {
                chosen.push(b);
            }
        }
        for &b in &chosen {
            g.add_edge(a, b);
        }
    }
    g
}

/// Generates connected overlays: retries [`random_k_out`] with fresh
/// randomness until the sample is connected (at most `max_tries` times).
///
/// Returns `None` if no connected overlay was found, which for the paper's
/// parameters indicates a mis-configuration (e.g. `k = 1`).
pub fn connected_k_out<R: Rng>(n: usize, k: usize, rng: &mut R, max_tries: usize) -> Option<Graph> {
    for _ in 0..max_tries {
        let g = random_k_out(n, k, rng);
        if g.is_connected() {
            return Some(g);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn fanout_matches_paper_sizes() {
        // 2k should be close to log2(n) for the paper's three system sizes.
        assert_eq!(paper_fanout(13), 2);
        assert_eq!(paper_fanout(53), 3);
        assert_eq!(paper_fanout(105), 3);
        assert_eq!(paper_fanout(1), 0);
        assert_eq!(paper_fanout(2), 1); // clamped by n-1
    }

    #[test]
    fn k_out_degrees_and_edge_count() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 105;
        let k = 3;
        let g = random_k_out(n, k, &mut rng);
        // Every node opened k connections; collisions only remove duplicates,
        // so degree >= k and total edges <= n*k.
        assert!((0..n).all(|v| g.degree(v) >= k));
        assert!(g.num_edges() <= n * k);
        // Mean degree is close to 2k (collisions are rare for n >> k).
        assert!(g.mean_degree() > 1.8 * k as f64, "mean {}", g.mean_degree());
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let g1 = random_k_out(53, 3, &mut StdRng::seed_from_u64(11));
        let g2 = random_k_out(53, 3, &mut StdRng::seed_from_u64(11));
        let g3 = random_k_out(53, 3, &mut StdRng::seed_from_u64(12));
        assert_eq!(g1, g2);
        assert_ne!(g1, g3);
    }

    #[test]
    fn paper_overlays_are_connected() {
        let mut rng = StdRng::seed_from_u64(5);
        for &n in &[13, 53, 105] {
            let g = connected_k_out(n, paper_fanout(n), &mut rng, 50)
                .expect("paper-sized overlay should connect quickly");
            assert!(g.is_connected());
            assert_eq!(g.len(), n);
        }
    }

    #[test]
    fn no_self_loops() {
        let mut rng = StdRng::seed_from_u64(9);
        let g = random_k_out(20, 4, &mut rng);
        for v in 0..20 {
            assert!(!g.neighbors(v).contains(&v));
        }
    }

    #[test]
    #[should_panic(expected = "k must be smaller")]
    fn k_equal_n_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        random_k_out(5, 5, &mut rng);
    }

    proptest! {
        /// Generated overlays always respect degree >= k and have no self loops.
        #[test]
        fn prop_k_out_invariants(n in 4usize..60, seed in 0u64..1000) {
            let k = paper_fanout(n).min(n - 1);
            let mut rng = StdRng::seed_from_u64(seed);
            let g = random_k_out(n, k, &mut rng);
            prop_assert_eq!(g.len(), n);
            for v in 0..n {
                prop_assert!(g.degree(v) >= k);
                prop_assert!(!g.neighbors(v).contains(&v));
            }
        }
    }
}
