//! A compact undirected graph with hop and weighted distance queries.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use serde::{Deserialize, Serialize};
use simnet::SimDuration;

/// An undirected graph over nodes `0..n`, stored as adjacency lists.
///
/// This is the overlay network interconnecting consensus processes: nodes are
/// process ids, edges are the bi-directional channels they keep open.
///
/// # Example
///
/// ```
/// use overlay::Graph;
///
/// let mut g = Graph::new(4);
/// g.add_edge(0, 1);
/// g.add_edge(1, 2);
/// g.add_edge(2, 3);
/// assert!(g.is_connected());
/// assert_eq!(g.neighbors(1), &[0, 2]);
/// assert_eq!(g.bfs_hops(0)[3], Some(3));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Graph {
    adj: Vec<Vec<usize>>,
    num_edges: usize,
}

impl Graph {
    /// Creates an edgeless graph with `n` nodes.
    pub fn new(n: usize) -> Self {
        Graph {
            adj: vec![Vec::new(); n],
            num_edges: 0,
        }
    }

    /// Builds a graph from an edge list.
    ///
    /// Duplicate edges and self-loops are ignored.
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is `>= n`.
    pub fn from_edges(n: usize, edges: impl IntoIterator<Item = (usize, usize)>) -> Self {
        let mut g = Graph::new(n);
        for (a, b) in edges {
            g.add_edge(a, b);
        }
        g
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.adj.len()
    }

    /// Whether the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.adj.is_empty()
    }

    /// Number of (undirected) edges.
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Adds the undirected edge `{a, b}`. Self-loops and duplicates are
    /// ignored. Returns whether the edge was newly added.
    ///
    /// # Panics
    ///
    /// Panics if `a` or `b` is out of range.
    pub fn add_edge(&mut self, a: usize, b: usize) -> bool {
        assert!(
            a < self.len() && b < self.len(),
            "edge endpoint out of range"
        );
        if a == b || self.has_edge(a, b) {
            return false;
        }
        // Keep adjacency lists sorted for deterministic iteration order.
        let pos_a = self.adj[a].binary_search(&b).unwrap_err();
        self.adj[a].insert(pos_a, b);
        let pos_b = self.adj[b].binary_search(&a).unwrap_err();
        self.adj[b].insert(pos_b, a);
        self.num_edges += 1;
        true
    }

    /// Whether the edge `{a, b}` exists.
    pub fn has_edge(&self, a: usize, b: usize) -> bool {
        self.adj[a].binary_search(&b).is_ok()
    }

    /// The sorted neighbors of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn neighbors(&self, node: usize) -> &[usize] {
        &self.adj[node]
    }

    /// Degree of `node`.
    pub fn degree(&self, node: usize) -> usize {
        self.adj[node].len()
    }

    /// Mean degree over all nodes.
    pub fn mean_degree(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            2.0 * self.num_edges as f64 / self.len() as f64
        }
    }

    /// Whether every node is reachable from node 0 (true for the empty
    /// graph).
    pub fn is_connected(&self) -> bool {
        if self.is_empty() {
            return true;
        }
        self.bfs_hops(0).iter().all(Option::is_some)
    }

    /// Hop distances from `source` to every node (`None` = unreachable).
    ///
    /// # Panics
    ///
    /// Panics if `source` is out of range.
    pub fn bfs_hops(&self, source: usize) -> Vec<Option<usize>> {
        assert!(source < self.len(), "source out of range");
        let mut dist = vec![None; self.len()];
        dist[source] = Some(0);
        let mut frontier = std::collections::VecDeque::from([source]);
        while let Some(u) = frontier.pop_front() {
            let du = dist[u].expect("visited node has distance");
            for &v in &self.adj[u] {
                if dist[v].is_none() {
                    dist[v] = Some(du + 1);
                    frontier.push_back(v);
                }
            }
        }
        dist
    }

    /// The eccentricity-based diameter in hops, or `None` if disconnected.
    pub fn diameter_hops(&self) -> Option<usize> {
        let mut best = 0;
        for s in 0..self.len() {
            for d in self.bfs_hops(s) {
                best = best.max(d?);
            }
        }
        Some(best)
    }

    /// Weighted shortest-path distances from `source`, with per-edge weights
    /// given by `weight(a, b)` (`None` = unreachable).
    ///
    /// This is how the coordinator RTTs of §4.6 are computed: the fastest
    /// route a gossiped message can take from the coordinator to each process
    /// is a shortest path through the overlay under WAN latencies.
    ///
    /// # Panics
    ///
    /// Panics if `source` is out of range.
    pub fn dijkstra<W>(&self, source: usize, mut weight: W) -> Vec<Option<SimDuration>>
    where
        W: FnMut(usize, usize) -> SimDuration,
    {
        assert!(source < self.len(), "source out of range");
        let mut dist: Vec<Option<SimDuration>> = vec![None; self.len()];
        let mut heap = BinaryHeap::new();
        dist[source] = Some(SimDuration::ZERO);
        heap.push(Reverse((SimDuration::ZERO, source)));
        while let Some(Reverse((d, u))) = heap.pop() {
            if dist[u] != Some(d) {
                continue; // stale entry
            }
            for &v in &self.adj[u] {
                let cand = d + weight(u, v);
                if dist[v].is_none_or(|cur| cand < cur) {
                    dist[v] = Some(cand);
                    heap.push(Reverse((cand, v)));
                }
            }
        }
        dist
    }

    /// All edges, each reported once with `a < b`, in deterministic order.
    pub fn edges(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.adj
            .iter()
            .enumerate()
            .flat_map(|(a, nbrs)| nbrs.iter().filter(move |&&b| a < b).map(move |&b| (a, b)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn path_graph(n: usize) -> Graph {
        Graph::from_edges(n, (0..n.saturating_sub(1)).map(|i| (i, i + 1)))
    }

    #[test]
    fn add_edge_dedups_and_ignores_loops() {
        let mut g = Graph::new(3);
        assert!(g.add_edge(0, 1));
        assert!(!g.add_edge(1, 0));
        assert!(!g.add_edge(2, 2));
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(2), 0);
    }

    #[test]
    fn neighbors_are_sorted() {
        let g = Graph::from_edges(5, [(3, 1), (3, 4), (3, 0), (3, 2)]);
        assert_eq!(g.neighbors(3), &[0, 1, 2, 4]);
    }

    #[test]
    fn connectivity() {
        assert!(path_graph(10).is_connected());
        let mut g = path_graph(4);
        assert!(g.is_connected());
        g = Graph::from_edges(4, [(0, 1), (2, 3)]);
        assert!(!g.is_connected());
        assert!(Graph::new(0).is_connected());
    }

    #[test]
    fn bfs_hops_on_path() {
        let g = path_graph(5);
        let d = g.bfs_hops(0);
        assert_eq!(d, vec![Some(0), Some(1), Some(2), Some(3), Some(4)]);
        assert_eq!(g.diameter_hops(), Some(4));
    }

    #[test]
    fn disconnected_diameter_is_none() {
        let g = Graph::from_edges(3, [(0, 1)]);
        assert_eq!(g.diameter_hops(), None);
        assert_eq!(g.bfs_hops(0)[2], None);
    }

    #[test]
    fn dijkstra_prefers_cheap_detour() {
        // 0-1 is expensive; 0-2-1 is cheap.
        let g = Graph::from_edges(3, [(0, 1), (0, 2), (2, 1)]);
        let w = |a: usize, b: usize| {
            if (a.min(b), a.max(b)) == (0, 1) {
                SimDuration::from_millis(100)
            } else {
                SimDuration::from_millis(10)
            }
        };
        let d = g.dijkstra(0, w);
        assert_eq!(d[1], Some(SimDuration::from_millis(20)));
        assert_eq!(d[2], Some(SimDuration::from_millis(10)));
    }

    #[test]
    fn dijkstra_unreachable_is_none() {
        let g = Graph::from_edges(3, [(0, 1)]);
        let d = g.dijkstra(0, |_, _| SimDuration::from_millis(1));
        assert_eq!(d[2], None);
    }

    #[test]
    fn edges_iterator_reports_each_once() {
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0)]);
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges, vec![(0, 1), (0, 3), (1, 2), (2, 3)]);
    }

    #[test]
    fn mean_degree() {
        let g = path_graph(4); // 3 edges, 4 nodes
        assert!((g.mean_degree() - 1.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_edge_panics() {
        Graph::new(2).add_edge(0, 5);
    }

    proptest! {
        /// BFS hop distances satisfy the triangle property along edges.
        #[test]
        fn prop_bfs_edge_consistency(edges in proptest::collection::vec((0usize..20, 0usize..20), 0..80)) {
            let g = Graph::from_edges(20, edges);
            let d = g.bfs_hops(0);
            for (a, b) in g.edges() {
                match (d[a], d[b]) {
                    (Some(da), Some(db)) => {
                        prop_assert!(da.abs_diff(db) <= 1, "edge ({a},{b}) dist {da} vs {db}");
                    }
                    (None, None) => {}
                    _ => prop_assert!(false, "edge with one endpoint reachable"),
                }
            }
        }

        /// Dijkstra with unit weights equals BFS hop counts.
        #[test]
        fn prop_dijkstra_matches_bfs(edges in proptest::collection::vec((0usize..15, 0usize..15), 0..60)) {
            let g = Graph::from_edges(15, edges);
            let hops = g.bfs_hops(0);
            let dist = g.dijkstra(0, |_, _| SimDuration::from_nanos(1));
            for i in 0..15 {
                prop_assert_eq!(hops[i].map(|h| h as u64), dist[i].map(|d| d.as_nanos()));
            }
        }
    }
}
