//! Cross-layer observability for the gossip-consensus workspace.
//!
//! Every layer of the stack — the gossip hot path, Paxos phase machinery,
//! the TCP transport, and the simulation harness — reports what it does as
//! structured [`Event`]s through an [`Observer`]. The crate provides:
//!
//! - [`Event`]: one enum covering all layers, with a stable snake_case
//!   `kind` per variant and an exact JSON codec (JSONL traces round-trip
//!   `u64` fields bit-for-bit).
//! - [`Observer`]: the sink trait. The default [`NoopObserver`] is disabled
//!   via an associated `const`, so uninstrumented components compile to the
//!   same code as before instrumentation existed.
//! - [`RingObserver`] / [`SharedRing`]: bounded buffers for single-owner
//!   (simulated time) and multi-threaded (monotonic time) recording;
//!   [`Tee`] fans one instrumentation point out to two sinks.
//! - [`HealthTracker`]: instance-lifecycle tracking and stall detection
//!   over the event stream — pending work with no in-order delivery past
//!   a threshold emits `stall_detected` / `stall_cleared` events.
//! - [`FlightRecorder`]: an always-on bounded ring of recent events that
//!   produces reasoned, trace-compatible JSONL dumps on failure.
//! - [`SpanTracker`]: stitches per-value events into a
//!   submit → 2a → quorum → decision → in-order-delivery latency breakdown.
//! - [`LogHistogram`]: a mergeable, log-bucketed, bounded-memory latency
//!   histogram with quantile estimation — the hot-path alternative to the
//!   exact sample-keeping `simnet::Histogram`.
//! - [`ResourceLedger`] / [`TraceLedger`]: per-`(subsystem, message_class)`
//!   byte and scoped-CPU attribution — live (fed by instrumentation) and
//!   post-hoc (replayed from a recorded trace).
//! - [`Series`]: fixed-capacity windowed time-series (`(t, value)` ring
//!   with windowed rate/mean/max and histogram-backed quantiles) turning
//!   raw counters into `/metrics` rates.
//! - [`prom`]: hand-rolled Prometheus text exposition (counters, gauges,
//!   and cumulative histogram families) plus a parser for scraped text.
//! - [`Registry`] / [`MetricsServer`]: live gauges and histograms served
//!   over a dependency-free HTTP `/metrics` endpoint.
//! - [`Counter`]: the canonical monotone counter shared by
//!   `semantic_gossip` and `simnet`.
//!
//! `obs` is deliberately dependency-free (std only) so it can sit below
//! every other crate without cycles and build in fully offline
//! environments.

pub mod counter;
pub mod event;
pub mod flight;
pub mod health;
pub mod hist;
pub mod json;
pub mod ledger;
pub mod observer;
pub mod prom;
pub mod series;
pub mod serve;
pub mod span;

pub use counter::Counter;
pub use event::{Event, TimedEvent, TraceParseError};
pub use flight::FlightRecorder;
pub use health::{HealthConfig, HealthSummary, HealthTracker};
pub use hist::LogHistogram;
pub use ledger::{CpuScope, LedgerCell, LedgerClock, ManualClock, ResourceLedger, TraceLedger};
pub use observer::{NoopObserver, Observer, RingObserver, SharedRing, Tee};
pub use series::Series;
pub use serve::{MetricsServer, Registry, SharedGauge, SharedHistogram};
pub use span::{SegmentStats, SpanSummary, SpanTracker, ValueSpan};
