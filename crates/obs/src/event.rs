//! Structured events covering every layer of the stack.
//!
//! One `Event` is one observable state transition: a gossip hot-path step,
//! a Paxos phase transition, a transport lifecycle change, or a simulation
//! marker. Variants, their `kind` strings, the JSON codec, and the
//! per-variant examples are all generated from a single `events!` table so
//! they cannot drift apart — adding a variant automatically extends
//! serialization and the exhaustive round-trip test.
//!
//! Value identity is carried as `(origin, seq)` pairs (the fields of a
//! `ValueId`), which is what lets [`SpanTracker`](crate::span::SpanTracker)
//! stitch submit → 2a → quorum → decision → delivery chains back together
//! from a flat event stream.

use std::collections::BTreeMap;

use crate::json::JsonValue;

/// Per-field JSON conversion used by the generated codec.
trait FieldCodec: Sized {
    fn encode(&self) -> JsonValue;
    fn decode(v: &JsonValue) -> Option<Self>;
    fn example() -> Self;
}

impl FieldCodec for u32 {
    fn encode(&self) -> JsonValue {
        JsonValue::Int(*self as i128)
    }
    fn decode(v: &JsonValue) -> Option<Self> {
        v.as_u64().and_then(|n| u32::try_from(n).ok())
    }
    fn example() -> Self {
        7
    }
}

impl FieldCodec for u64 {
    fn encode(&self) -> JsonValue {
        JsonValue::Int(*self as i128)
    }
    fn decode(v: &JsonValue) -> Option<Self> {
        v.as_u64()
    }
    fn example() -> Self {
        // Above 2^53: catches any codec that squeezes u64 through an f64.
        (1 << 61) + 5
    }
}

impl FieldCodec for String {
    fn encode(&self) -> JsonValue {
        JsonValue::Str(self.clone())
    }
    fn decode(v: &JsonValue) -> Option<Self> {
        v.as_str().map(str::to_string)
    }
    fn example() -> Self {
        "example \"label\"".to_string()
    }
}

/// Why deserializing an event line failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceParseError {
    /// The JSON text did not parse at all.
    Json(String),
    /// The document was not an object.
    NotAnObject,
    /// The object has no string `type` key.
    MissingType,
    /// `type` named no known event kind.
    UnknownKind(String),
    /// A required field was absent.
    MissingField(&'static str),
    /// A field had the wrong JSON type or was out of range.
    BadField(&'static str),
}

impl std::fmt::Display for TraceParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceParseError::Json(e) => write!(f, "invalid JSON: {e}"),
            TraceParseError::NotAnObject => write!(f, "event line is not a JSON object"),
            TraceParseError::MissingType => write!(f, "event object has no \"type\""),
            TraceParseError::UnknownKind(k) => write!(f, "unknown event type {k:?}"),
            TraceParseError::MissingField(name) => write!(f, "missing field {name:?}"),
            TraceParseError::BadField(name) => write!(f, "malformed field {name:?}"),
        }
    }
}

impl std::error::Error for TraceParseError {}

macro_rules! events {
    (
        $(
            $(#[$vmeta:meta])*
            $variant:ident = $kind:literal { $( $field:ident : $fty:ty ),* $(,)? }
        ),* $(,)?
    ) => {
        /// One observable state transition somewhere in the stack.
        ///
        /// Every variant carries the `node` it happened on; message ids are
        /// a 64-bit fold of the gossip `MessageId` (`trace_id()`), unique
        /// per wire message in practice.
        #[derive(Debug, Clone, PartialEq)]
        pub enum Event {
            $( $(#[$vmeta])* $variant { $($field: $fty),* } ),*
        }

        impl Event {
            /// Every `kind` string, in declaration order (drives Prometheus
            /// per-kind counters and the exhaustive codec test).
            pub const KINDS: &'static [&'static str] = &[$($kind),*];

            /// Stable snake_case tag identifying the variant.
            pub fn kind(&self) -> &'static str {
                match self { $( Event::$variant { .. } => $kind ),* }
            }

            /// The node the event occurred on.
            pub fn node(&self) -> u32 {
                match self { $( Event::$variant { node, .. } => *node ),* }
            }

            /// Encodes as a JSON object with a `type` tag.
            pub fn to_json_value(&self) -> JsonValue {
                match self {
                    $(
                        #[allow(unused_variables)]
                        Event::$variant { $($field),* } => {
                            let mut map = BTreeMap::new();
                            map.insert("type".to_string(), JsonValue::Str($kind.to_string()));
                            $( map.insert(stringify!($field).to_string(), FieldCodec::encode($field)); )*
                            JsonValue::Obj(map)
                        }
                    ),*
                }
            }

            /// Decodes from a JSON object; unknown extra keys are ignored.
            pub fn from_json_value(v: &JsonValue) -> Result<Event, TraceParseError> {
                let obj = v.as_obj().ok_or(TraceParseError::NotAnObject)?;
                let kind = obj
                    .get("type")
                    .and_then(|t| t.as_str())
                    .ok_or(TraceParseError::MissingType)?;
                match kind {
                    $(
                        $kind => Ok(Event::$variant {
                            $(
                                $field: <$fty as FieldCodec>::decode(
                                    obj.get(stringify!($field))
                                        .ok_or(TraceParseError::MissingField(stringify!($field)))?,
                                )
                                .ok_or(TraceParseError::BadField(stringify!($field)))?,
                            )*
                        }),
                    )*
                    _ => Err(TraceParseError::UnknownKind(kind.to_string())),
                }
            }

            /// One synthetic instance of every variant (for exhaustive
            /// codec tests and documentation).
            pub fn examples() -> Vec<Event> {
                vec![ $( Event::$variant { $( $field: FieldCodec::example() ),* } ),* ]
            }
        }
    };
}

events! {
    // ------------------------------------------------------------------
    // Gossip hot path (semantic_gossip::GossipNode)
    // ------------------------------------------------------------------
    /// A message arrived from a peer, before disaggregation and duplicate
    /// checking.
    GossipReceived = "gossip_received" { node: u32, from: u32, msg: u64 },
    /// An aggregated message was split into `parts` individual messages.
    GossipDisaggregated = "gossip_disaggregated" { node: u32, msg: u64, parts: u64 },
    /// A received part was discarded as a recently-seen duplicate.
    DuplicateDropped = "duplicate_dropped" { node: u32, msg: u64 },
    /// The semantic filter suppressed an outgoing message.
    SemanticFiltered = "semantic_filtered" { node: u32, msg: u64 },
    /// Aggregation replaced `before` pending messages with `after`.
    VotesAggregated = "votes_aggregated" { node: u32, before: u64, after: u64 },
    /// A fresh message was handed to the consensus layer.
    GossipDelivered = "gossip_delivered" { node: u32, msg: u64 },
    /// A message was queued for a peer.
    GossipSent = "gossip_sent" { node: u32, to: u32, msg: u64 },
    /// A locally broadcast message entered the gossip substrate as wire
    /// message `msg`, carrying consensus identity (`kind`, `instance`,
    /// `origin`, `seq`). Joins the wire-level `gossip_sent`/`gossip_received`
    /// timeline to protocol state for causal critical-path analysis;
    /// `instance` is `u64::MAX` when the message is not instance-bound.
    WireTagged = "wire_tagged" { node: u32, msg: u64, kind: String, instance: u64, origin: u32, seq: u64 },
    /// A per-peer send queue overflowed and the message was dropped.
    SendQueueOverflow = "send_queue_overflow" { node: u32, to: u32, msg: u64 },
    /// The delivery queue overflowed and the message was dropped.
    DeliveryQueueOverflow = "delivery_queue_overflow" { node: u32, msg: u64 },

    // ------------------------------------------------------------------
    // Eager/lazy dissemination (semantic_gossip::EagerLazyNode)
    // ------------------------------------------------------------------
    /// A full payload was queued along an eager (tree) link toward `to`.
    EagerSent = "eager_sent" { node: u32, to: u32, msg: u64 },
    /// A batched IHAVE announcement of `entries` message ids was queued
    /// toward lazy peer `to`.
    IhaveSent = "ihave_sent" { node: u32, to: u32, entries: u64 },
    /// The miss timer fired and an IWANT for `entries` missing ids was
    /// queued toward announcer `to`.
    IwantSent = "iwant_sent" { node: u32, to: u32, entries: u64 },
    /// The lazy link to `peer` delivered missed message `msg`: it was
    /// promoted to the eager set and a GRAFT was queued to make the
    /// promotion mutual.
    Graft = "graft" { node: u32, peer: u32, msg: u64 },
    /// The eager link to `peer` delivered duplicate `msg`: it was demoted
    /// to the lazy set and a PRUNE was queued to stop the peer's pushes.
    Prune = "prune" { node: u32, peer: u32, msg: u64 },

    // ------------------------------------------------------------------
    // Paxos transitions (paxos::PaxosProcess)
    // ------------------------------------------------------------------
    /// A client value entered the system at this process.
    ValueSubmitted = "value_submitted" { node: u32, origin: u32, seq: u64 },
    /// The coordinator started (or took over) a round.
    RoundStarted = "round_started" { node: u32, round: u32 },
    /// An acceptor handled a Phase 1a (prepare) message.
    Phase1a = "phase1a" { node: u32, round: u32, from_instance: u64 },
    /// The coordinator handled a Phase 1b (promise) message.
    Phase1b = "phase1b" { node: u32, round: u32, sender: u32 },
    /// An acceptor handled a Phase 2a (accept request) for a value.
    Phase2a = "phase2a" { node: u32, instance: u64, round: u32, origin: u32, seq: u64 },
    /// A learner handled a Phase 2b (vote) carrying `voters` votes.
    Phase2b = "phase2b" { node: u32, instance: u64, round: u32, voters: u64 },
    /// A majority of acceptors is known to have voted for the value.
    QuorumReached = "quorum_reached" { node: u32, instance: u64, origin: u32, seq: u64 },
    /// The instance's value became decided at this process.
    Decided = "decided" { node: u32, instance: u64, origin: u32, seq: u64 },
    /// The decided value was released in instance order to the application.
    OrderedDelivered = "ordered_delivered" { node: u32, instance: u64, origin: u32, seq: u64 },
    /// The instance decided a value already delivered at a lower instance
    /// (the same client value was assigned two instances by different
    /// rounds' coordinators); the slot was released as a no-op.
    DuplicateSuppressed = "duplicate_suppressed" { node: u32, instance: u64, origin: u32, seq: u64 },

    // ------------------------------------------------------------------
    // Transport lifecycle (transport::Endpoint)
    // ------------------------------------------------------------------
    /// An outbound connection attempt to `peer` started.
    Dialed = "dialed" { node: u32, peer: u32 },
    /// An inbound connection from `peer` was accepted.
    Accepted = "accepted" { node: u32, peer: u32 },
    /// The connection to `peer` went away.
    PeerDropped = "peer_dropped" { node: u32, peer: u32 },
    /// A frame of `bytes` payload bytes was handed to the wire.
    FrameSent = "frame_sent" { node: u32, peer: u32, bytes: u64 },
    /// A frame of `bytes` payload bytes arrived off the wire.
    FrameReceived = "frame_received" { node: u32, peer: u32, bytes: u64 },
    /// A frame was dropped before the wire (unknown peer or full queue).
    FrameDropped = "frame_dropped" { node: u32, peer: u32 },
    /// A send routine flushed `frames` pending frames (`bytes` total
    /// payload) in one batched write instead of one syscall each.
    FramesCoalesced = "frames_coalesced" { node: u32, peer: u32, frames: u64, bytes: u64 },
    /// One encoding of message `msg` (`bytes` long) was shared across
    /// `fanout` per-peer sends instead of being re-encoded per peer.
    FrameShared = "frame_shared" { node: u32, msg: u64, fanout: u64, bytes: u64 },
    /// Wire message `msg` (`bytes` payload bytes) physically left `node`
    /// toward `peer`. Unlike [`Event::FrameSent`] this carries the wire
    /// message id *and* the sender's own class declaration (`kind`), so
    /// post-hoc attribution never depends on a [`Event::WireTagged`] join
    /// surviving ring eviction — direct-mode sends and drain-time
    /// aggregates (fresh wire ids, never tagged) stay classifiable. An
    /// empty `kind` falls back to the tag join. This is the
    /// byte-attribution substrate of `tracetool ledger`.
    WireFrame = "wire_frame" { node: u32, peer: u32, msg: u64, kind: String, bytes: u64 },

    // ------------------------------------------------------------------
    // Periodic gauge samples (live runs; mirrored by /metrics gauges)
    // ------------------------------------------------------------------
    /// Snapshot of the gossip send queue toward `peer`: `depth` messages
    /// waiting.
    QueueDepthSampled = "queue_depth_sampled" { node: u32, peer: u32, depth: u64 },
    /// Snapshot of the duplicate-suppression cache: `entries` message ids
    /// currently remembered.
    CacheOccupancySampled = "cache_occupancy_sampled" { node: u32, entries: u64 },
    /// Snapshot of the Paxos instance window: `open` instances voted on
    /// or decided but not yet released in order.
    InstanceWindowSampled = "instance_window_sampled" { node: u32, open: u64 },
    /// Snapshot of a per-peer send queue's head-of-line wait: the queue
    /// toward `peer` has been continuously non-empty for `lag_ns`.
    QueueLagSampled = "queue_lag_sampled" { node: u32, peer: u32, lag_ns: u64 },

    // ------------------------------------------------------------------
    // Health / liveness (obs::health)
    // ------------------------------------------------------------------
    /// The health tracker saw pending work but no in-order delivery for
    /// longer than its threshold. `instance` is the oldest open undecided
    /// instance (or the log head when all seen instances have closed) and
    /// `phase` the lifecycle phase it is stuck in; `age_ms` is the
    /// progress gap at detection time.
    StallDetected = "stall_detected" { node: u32, instance: u64, phase: String, age_ms: u64 },
    /// In-order delivery resumed after a detected stall: `instance` is the
    /// instance named by the matching [`Event::StallDetected`] and
    /// `stalled_ms` the full progress gap the stall spanned.
    StallCleared = "stall_cleared" { node: u32, instance: u64, stalled_ms: u64 },

    // ------------------------------------------------------------------
    // Simulation / cluster markers (simnet, testbed)
    // ------------------------------------------------------------------
    /// The network model discarded an in-flight message.
    MessageLost = "message_lost" { node: u32, msg: u64, reason: String },
    /// The process crashed (fault injection).
    Crashed = "crashed" { node: u32 },
    /// The process recovered from a crash.
    Recovered = "recovered" { node: u32 },
    /// The cross-process safety auditor found an invariant violation
    /// involving this node (`detail` names the invariant and the evidence).
    AuditViolation = "audit_violation" { node: u32, detail: String },
    /// Scoped CPU time attributed to a `(subsystem, class)` ledger cell:
    /// `node` spent `ns` nanoseconds of modelled (or measured) CPU in
    /// `subsystem` handling messages of `class`. Emitted as end-of-run
    /// summaries by the simulated cluster so `tracetool ledger` can
    /// attribute CPU alongside bytes.
    CpuCharged = "cpu_charged" { node: u32, subsystem: String, class: String, ns: u64 },
    /// Free-form annotation.
    Mark = "mark" { node: u32, label: String },
}

/// An [`Event`] plus the timestamp it was recorded at.
///
/// Timestamps are nanoseconds on whatever clock the recording observer
/// uses: simulated time inside simnet, monotonic elapsed time for live
/// transport runs. `obs` never reads a clock itself.
#[derive(Debug, Clone, PartialEq)]
pub struct TimedEvent {
    /// Nanoseconds since the observer's epoch.
    pub at: u64,
    /// What happened.
    pub event: Event,
}

impl TimedEvent {
    /// Encodes as one JSONL line (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut v = self.event.to_json_value();
        if let JsonValue::Obj(map) = &mut v {
            map.insert("ts".to_string(), JsonValue::Int(self.at as i128));
        }
        v.render()
    }

    /// Decodes one JSONL line.
    pub fn from_json(line: &str) -> Result<TimedEvent, TraceParseError> {
        let v = JsonValue::parse(line).map_err(|e| TraceParseError::Json(e.to_string()))?;
        let at = v
            .as_obj()
            .ok_or(TraceParseError::NotAnObject)?
            .get("ts")
            .ok_or(TraceParseError::MissingField("ts"))?
            .as_u64()
            .ok_or(TraceParseError::BadField("ts"))?;
        Ok(TimedEvent {
            at,
            event: Event::from_json_value(&v)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_are_unique_and_match_examples() {
        let examples = Event::examples();
        assert_eq!(examples.len(), Event::KINDS.len());
        let mut kinds: Vec<&str> = examples.iter().map(|e| e.kind()).collect();
        assert_eq!(kinds, Event::KINDS);
        kinds.sort_unstable();
        kinds.dedup();
        assert_eq!(kinds.len(), Event::KINDS.len(), "duplicate kind string");
    }

    #[test]
    fn every_variant_round_trips_through_json() {
        for event in Event::examples() {
            let line = TimedEvent {
                at: u64::MAX - 1,
                event: event.clone(),
            }
            .to_json();
            let back = TimedEvent::from_json(&line).unwrap();
            assert_eq!(back.at, u64::MAX - 1);
            assert_eq!(back.event, event, "variant {} corrupted", event.kind());
        }
    }

    #[test]
    fn unknown_kind_is_reported() {
        let err = TimedEvent::from_json(r#"{"ts":1,"type":"warp_drive"}"#).unwrap_err();
        assert_eq!(err, TraceParseError::UnknownKind("warp_drive".into()));
    }

    #[test]
    fn missing_field_is_reported() {
        let err = TimedEvent::from_json(r#"{"ts":1,"type":"mark","node":2}"#).unwrap_err();
        assert_eq!(err, TraceParseError::MissingField("label"));
    }
}
