//! Hand-rolled Prometheus text exposition (version 0.0.4).
//!
//! The testbed exposes run metrics in the standard
//! `# HELP` / `# TYPE` / sample-line format so they can be diffed, grepped,
//! or scraped without bringing a metrics crate into an offline build. Only
//! the pieces the exporters need are implemented: counters, gauges, and
//! escaped label pairs.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::event::TimedEvent;
use crate::hist::LogHistogram;

/// The metric types the exposition format distinguishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonically increasing.
    Counter,
    /// Free-moving value.
    Gauge,
    /// Cumulative `_bucket`/`_sum`/`_count` family.
    Histogram,
}

impl MetricKind {
    fn as_str(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

/// Builder for one exposition document.
///
/// # Example
///
/// ```
/// use obs::prom::{Exposition, MetricKind};
/// let mut exp = Exposition::new();
/// exp.header("gossip_sent_total", "Messages handed to transport.", MetricKind::Counter);
/// exp.sample_u64("gossip_sent_total", &[("setup", "semantic")], 42);
/// assert!(exp.render().contains("gossip_sent_total{setup=\"semantic\"} 42"));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Exposition {
    out: String,
}

impl Exposition {
    /// An empty document.
    pub fn new() -> Self {
        Self::default()
    }

    /// Writes the `# HELP` / `# TYPE` preamble for a metric family.
    pub fn header(&mut self, name: &str, help: &str, kind: MetricKind) {
        let _ = writeln!(self.out, "# HELP {name} {}", escape_help(help));
        let _ = writeln!(self.out, "# TYPE {name} {}", kind.as_str());
    }

    /// Writes one sample line with integer value.
    pub fn sample_u64(&mut self, name: &str, labels: &[(&str, &str)], value: u64) {
        self.write_sample(name, labels, &value.to_string());
    }

    /// Writes one sample line with float value.
    pub fn sample_f64(&mut self, name: &str, labels: &[(&str, &str)], value: f64) {
        self.write_sample(name, labels, &format_value(value));
    }

    fn write_sample(&mut self, name: &str, labels: &[(&str, &str)], value: &str) {
        self.out.push_str(name);
        if !labels.is_empty() {
            self.out.push('{');
            for (i, (k, v)) in labels.iter().enumerate() {
                if i > 0 {
                    self.out.push(',');
                }
                let _ = write!(self.out, "{k}=\"{}\"", escape_label(v));
            }
            self.out.push('}');
        }
        let _ = writeln!(self.out, " {value}");
    }

    /// Writes a full histogram family — cumulative `_bucket{le=...}`
    /// lines for every non-empty bucket plus `+Inf`, then `_sum` and
    /// `_count`. Recorded values are divided by `scale` at exposition
    /// time (e.g. `1e9` turns recorded nanoseconds into seconds).
    ///
    /// The `# HELP`/`# TYPE` preamble is written too; `name` must be the
    /// bare family name without the `_bucket` suffix.
    pub fn histogram(
        &mut self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        hist: &LogHistogram,
        scale: f64,
    ) {
        self.header(name, help, MetricKind::Histogram);
        self.histogram_samples(name, labels, hist, scale);
    }

    /// Writes a histogram's sample lines without the `# HELP`/`# TYPE`
    /// preamble — for families with several label sets, where the header
    /// must appear exactly once.
    pub fn histogram_samples(
        &mut self,
        name: &str,
        labels: &[(&str, &str)],
        hist: &LogHistogram,
        scale: f64,
    ) {
        let bucket = format!("{name}_bucket");
        let mut cumulative = 0u64;
        for (upper, count) in hist.buckets() {
            cumulative += count;
            let le = format_value(upper as f64 / scale);
            let mut with_le = labels.to_vec();
            with_le.push(("le", le.as_str()));
            self.write_sample(&bucket, &with_le, &cumulative.to_string());
        }
        let mut with_le = labels.to_vec();
        with_le.push(("le", "+Inf"));
        self.write_sample(&bucket, &with_le, &hist.count().to_string());
        self.sample_f64(&format!("{name}_sum"), labels, hist.sum() as f64 / scale);
        self.sample_u64(&format!("{name}_count"), labels, hist.count());
    }

    /// The finished document.
    pub fn render(self) -> String {
        self.out
    }
}

/// Escapes a label value per the exposition format: `\` → `\\`, `"` → `\"`,
/// newline → `\n`. Every sample writer in the workspace routes through
/// [`Exposition::write_sample`], which applies this; it is public so
/// emitters outside `obs` (and the parser tests) can share the single
/// definition instead of re-implementing it.
pub fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// Reverses [`escape_label`]: `\\` → `\`, `\"` → `"`, `\n` → newline.
/// Unknown escapes keep the backslash verbatim (matching Prometheus'
/// lenient readers).
pub fn unescape_label(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    let mut chars = v.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('\\') => out.push('\\'),
            Some('"') => out.push('"'),
            Some('n') => out.push('\n'),
            Some(other) => {
                out.push('\\');
                out.push(other);
            }
            None => out.push('\\'),
        }
    }
    out
}

fn escape_help(v: &str) -> String {
    v.replace('\\', "\\\\").replace('\n', "\\n")
}

fn format_value(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v.is_infinite() {
        (if v > 0.0 { "+Inf" } else { "-Inf" }).to_string()
    } else {
        format!("{v}")
    }
}

/// One parsed sample line from an exposition document.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Metric name (including any `_bucket`/`_sum`/`_count` suffix).
    pub name: String,
    /// Label pairs in document order, values unescaped.
    pub labels: Vec<(String, String)>,
    /// The sample value (`NaN`/`±Inf` parse to the matching float).
    pub value: f64,
}

impl Sample {
    /// The value of label `key`, if present.
    pub fn label(&self, key: &str) -> Option<&str> {
        self.labels
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// Parses Prometheus exposition text into its sample lines.
///
/// Comments (`# HELP` / `# TYPE` / anything starting with `#`) and blank
/// lines are skipped; malformed lines are skipped too (a scrape endpoint
/// mid-restart should not crash a watcher). Label values round-trip
/// through [`unescape_label`], so whatever [`Exposition`] escaped comes
/// back verbatim.
pub fn parse_samples(text: &str) -> Vec<Sample> {
    let mut out = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some(sample) = parse_sample_line(line) {
            out.push(sample);
        }
    }
    out
}

fn parse_sample_line(line: &str) -> Option<Sample> {
    let (name_and_labels, value_str) = match line.find('}') {
        // `name{labels} value` — the value starts after the brace.
        Some(close) => {
            let (head, tail) = line.split_at(close + 1);
            (head, tail.trim())
        }
        // `name value` — split on the first whitespace.
        None => {
            let mut parts = line.splitn(2, char::is_whitespace);
            (parts.next()?, parts.next()?.trim())
        }
    };
    // Prometheus allows an optional timestamp after the value; keep the
    // first token only.
    let value_tok = value_str.split_whitespace().next()?;
    let value = match value_tok {
        "+Inf" => f64::INFINITY,
        "-Inf" => f64::NEG_INFINITY,
        "NaN" => f64::NAN,
        v => v.parse().ok()?,
    };
    let (name, labels) = match name_and_labels.find('{') {
        Some(open) => {
            let name = &name_and_labels[..open];
            let body = name_and_labels[open + 1..].strip_suffix('}')?;
            (name, parse_labels(body)?)
        }
        None => (name_and_labels, Vec::new()),
    };
    if name.is_empty() {
        return None;
    }
    Some(Sample {
        name: name.to_string(),
        labels,
        value,
    })
}

fn parse_labels(body: &str) -> Option<Vec<(String, String)>> {
    let mut labels = Vec::new();
    let bytes = body.as_bytes();
    let mut pos = 0;
    while pos < bytes.len() {
        if bytes[pos] == b',' {
            pos += 1;
            continue;
        }
        let eq = body[pos..].find('=')? + pos;
        let key = body[pos..eq].trim().to_string();
        if bytes.get(eq + 1) != Some(&b'"') {
            return None;
        }
        // Scan the quoted value, honouring backslash escapes.
        let mut i = eq + 2;
        let mut raw = String::new();
        loop {
            match bytes.get(i)? {
                b'\\' => {
                    raw.push('\\');
                    if let Some(&next) = bytes.get(i + 1) {
                        raw.push(next as char);
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                b'"' => {
                    i += 1;
                    break;
                }
                _ => {
                    // Multi-byte UTF-8 is copied through char-wise.
                    let ch = body[i..].chars().next()?;
                    raw.push(ch);
                    i += ch.len_utf8();
                }
            }
        }
        labels.push((key, unescape_label(&raw)));
        pos = i;
    }
    Some(labels)
}

/// Counts trace events per `kind` string (the raw material for
/// `trace_events_total{kind=...}` exposition).
pub fn event_kind_counts<'a>(
    events: impl IntoIterator<Item = &'a TimedEvent>,
) -> BTreeMap<&'static str, u64> {
    let mut counts = BTreeMap::new();
    for e in events {
        *counts.entry(e.event.kind()).or_insert(0) += 1;
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Event;

    #[test]
    fn renders_headers_and_samples() {
        let mut exp = Exposition::new();
        exp.header("up", "Whether the run completed.", MetricKind::Gauge);
        exp.sample_u64("up", &[], 1);
        exp.header("latency_seconds", "End-to-end latency.", MetricKind::Gauge);
        exp.sample_f64("latency_seconds", &[("phase", "quorum")], 0.0625);
        let text = exp.render();
        assert!(text.contains("# HELP up Whether the run completed."));
        assert!(text.contains("# TYPE up gauge"));
        assert!(text.contains("\nup 1\n"));
        assert!(text.contains("latency_seconds{phase=\"quorum\"} 0.0625"));
    }

    #[test]
    fn escapes_label_values() {
        let mut exp = Exposition::new();
        exp.sample_u64("m", &[("l", "a\"b\\c\nd")], 3);
        assert_eq!(exp.render(), "m{l=\"a\\\"b\\\\c\\nd\"} 3\n");
    }

    #[test]
    fn renders_histogram_family() {
        let mut h = LogHistogram::new();
        h.record(5);
        h.record(5);
        h.record(1_000_000_000); // one second, in ns
        let mut exp = Exposition::new();
        exp.histogram("lat_seconds", "Latency.", &[("setup", "gossip")], &h, 1e9);
        let text = exp.render();
        assert!(text.contains("# TYPE lat_seconds histogram"));
        // Buckets are cumulative and carry the shared labels plus `le`.
        assert!(text.contains("lat_seconds_bucket{setup=\"gossip\",le=\"0.000000005\"} 2"));
        assert!(text.contains("lat_seconds_bucket{setup=\"gossip\",le=\"+Inf\"} 3"));
        assert!(text.contains("lat_seconds_count{setup=\"gossip\"} 3"));
        assert!(text.contains("lat_seconds_sum{setup=\"gossip\"} 1.00000001"));
    }

    #[test]
    fn label_escaping_round_trips() {
        let nasty = [
            "plain",
            "a\"b",
            "back\\slash",
            "line\nbreak",
            "all\\three\"at\nonce",
            "trailing\\",
            "",
        ];
        for v in nasty {
            assert_eq!(unescape_label(&escape_label(v)), v, "value {v:?}");
        }
        // Unknown escapes stay verbatim rather than being eaten.
        assert_eq!(unescape_label("a\\tb"), "a\\tb");
    }

    #[test]
    fn parses_rendered_exposition_back() {
        let mut exp = Exposition::new();
        exp.header("bytes_total", "Bytes.", MetricKind::Counter);
        exp.sample_u64("bytes_total", &[("class", "phase2b"), ("node", "3")], 512);
        exp.sample_f64("rate", &[("class", "a\"b\\c\nd")], 12.5);
        exp.sample_u64("up", &[], 1);
        let samples = parse_samples(&exp.render());
        assert_eq!(samples.len(), 3);
        assert_eq!(samples[0].name, "bytes_total");
        assert_eq!(samples[0].label("class"), Some("phase2b"));
        assert_eq!(samples[0].label("node"), Some("3"));
        assert_eq!(samples[0].value, 512.0);
        // The nasty label value round-trips exactly.
        assert_eq!(samples[1].label("class"), Some("a\"b\\c\nd"));
        assert_eq!(samples[1].value, 12.5);
        assert_eq!(samples[2].name, "up");
        assert!(samples[2].labels.is_empty());
    }

    #[test]
    fn parses_special_values_and_skips_junk() {
        let text = "# HELP x y\nx{le=\"+Inf\"} +Inf\nx NaN\n\ngarbage line\nx -Inf 1700000000\n";
        let samples = parse_samples(text);
        assert_eq!(samples.len(), 3);
        assert_eq!(samples[0].value, f64::INFINITY);
        assert_eq!(samples[0].label("le"), Some("+Inf"));
        assert!(samples[1].value.is_nan());
        assert_eq!(samples[2].value, f64::NEG_INFINITY); // timestamp ignored
    }

    #[test]
    fn histogram_family_parses_with_le_labels() {
        let mut h = LogHistogram::new();
        h.record(1_000);
        let mut exp = Exposition::new();
        exp.histogram("f_seconds", "F.", &[("node", "0")], &h, 1e9);
        let samples = parse_samples(&exp.render());
        let inf = samples
            .iter()
            .find(|s| s.name == "f_seconds_bucket" && s.label("le") == Some("+Inf"))
            .expect("+Inf bucket");
        assert_eq!(inf.value, 1.0);
        assert!(samples.iter().any(|s| s.name == "f_seconds_count"));
    }

    #[test]
    fn counts_events_by_kind() {
        let mk = |event| TimedEvent { at: 0, event };
        let events = vec![
            mk(Event::Crashed { node: 1 }),
            mk(Event::Crashed { node: 2 }),
            mk(Event::Recovered { node: 1 }),
        ];
        let counts = event_kind_counts(&events);
        assert_eq!(counts["crashed"], 2);
        assert_eq!(counts["recovered"], 1);
        assert_eq!(counts.len(), 2);
    }
}
