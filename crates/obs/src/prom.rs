//! Hand-rolled Prometheus text exposition (version 0.0.4).
//!
//! The testbed exposes run metrics in the standard
//! `# HELP` / `# TYPE` / sample-line format so they can be diffed, grepped,
//! or scraped without bringing a metrics crate into an offline build. Only
//! the pieces the exporters need are implemented: counters, gauges, and
//! escaped label pairs.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::event::TimedEvent;
use crate::hist::LogHistogram;

/// The metric types the exposition format distinguishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonically increasing.
    Counter,
    /// Free-moving value.
    Gauge,
    /// Cumulative `_bucket`/`_sum`/`_count` family.
    Histogram,
}

impl MetricKind {
    fn as_str(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

/// Builder for one exposition document.
///
/// # Example
///
/// ```
/// use obs::prom::{Exposition, MetricKind};
/// let mut exp = Exposition::new();
/// exp.header("gossip_sent_total", "Messages handed to transport.", MetricKind::Counter);
/// exp.sample_u64("gossip_sent_total", &[("setup", "semantic")], 42);
/// assert!(exp.render().contains("gossip_sent_total{setup=\"semantic\"} 42"));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Exposition {
    out: String,
}

impl Exposition {
    /// An empty document.
    pub fn new() -> Self {
        Self::default()
    }

    /// Writes the `# HELP` / `# TYPE` preamble for a metric family.
    pub fn header(&mut self, name: &str, help: &str, kind: MetricKind) {
        let _ = writeln!(self.out, "# HELP {name} {}", escape_help(help));
        let _ = writeln!(self.out, "# TYPE {name} {}", kind.as_str());
    }

    /// Writes one sample line with integer value.
    pub fn sample_u64(&mut self, name: &str, labels: &[(&str, &str)], value: u64) {
        self.write_sample(name, labels, &value.to_string());
    }

    /// Writes one sample line with float value.
    pub fn sample_f64(&mut self, name: &str, labels: &[(&str, &str)], value: f64) {
        self.write_sample(name, labels, &format_value(value));
    }

    fn write_sample(&mut self, name: &str, labels: &[(&str, &str)], value: &str) {
        self.out.push_str(name);
        if !labels.is_empty() {
            self.out.push('{');
            for (i, (k, v)) in labels.iter().enumerate() {
                if i > 0 {
                    self.out.push(',');
                }
                let _ = write!(self.out, "{k}=\"{}\"", escape_label(v));
            }
            self.out.push('}');
        }
        let _ = writeln!(self.out, " {value}");
    }

    /// Writes a full histogram family — cumulative `_bucket{le=...}`
    /// lines for every non-empty bucket plus `+Inf`, then `_sum` and
    /// `_count`. Recorded values are divided by `scale` at exposition
    /// time (e.g. `1e9` turns recorded nanoseconds into seconds).
    ///
    /// The `# HELP`/`# TYPE` preamble is written too; `name` must be the
    /// bare family name without the `_bucket` suffix.
    pub fn histogram(
        &mut self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        hist: &LogHistogram,
        scale: f64,
    ) {
        self.header(name, help, MetricKind::Histogram);
        self.histogram_samples(name, labels, hist, scale);
    }

    /// Writes a histogram's sample lines without the `# HELP`/`# TYPE`
    /// preamble — for families with several label sets, where the header
    /// must appear exactly once.
    pub fn histogram_samples(
        &mut self,
        name: &str,
        labels: &[(&str, &str)],
        hist: &LogHistogram,
        scale: f64,
    ) {
        let bucket = format!("{name}_bucket");
        let mut cumulative = 0u64;
        for (upper, count) in hist.buckets() {
            cumulative += count;
            let le = format_value(upper as f64 / scale);
            let mut with_le = labels.to_vec();
            with_le.push(("le", le.as_str()));
            self.write_sample(&bucket, &with_le, &cumulative.to_string());
        }
        let mut with_le = labels.to_vec();
        with_le.push(("le", "+Inf"));
        self.write_sample(&bucket, &with_le, &hist.count().to_string());
        self.sample_f64(&format!("{name}_sum"), labels, hist.sum() as f64 / scale);
        self.sample_u64(&format!("{name}_count"), labels, hist.count());
    }

    /// The finished document.
    pub fn render(self) -> String {
        self.out
    }
}

fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

fn escape_help(v: &str) -> String {
    v.replace('\\', "\\\\").replace('\n', "\\n")
}

fn format_value(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v.is_infinite() {
        (if v > 0.0 { "+Inf" } else { "-Inf" }).to_string()
    } else {
        format!("{v}")
    }
}

/// Counts trace events per `kind` string (the raw material for
/// `trace_events_total{kind=...}` exposition).
pub fn event_kind_counts<'a>(
    events: impl IntoIterator<Item = &'a TimedEvent>,
) -> BTreeMap<&'static str, u64> {
    let mut counts = BTreeMap::new();
    for e in events {
        *counts.entry(e.event.kind()).or_insert(0) += 1;
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Event;

    #[test]
    fn renders_headers_and_samples() {
        let mut exp = Exposition::new();
        exp.header("up", "Whether the run completed.", MetricKind::Gauge);
        exp.sample_u64("up", &[], 1);
        exp.header("latency_seconds", "End-to-end latency.", MetricKind::Gauge);
        exp.sample_f64("latency_seconds", &[("phase", "quorum")], 0.0625);
        let text = exp.render();
        assert!(text.contains("# HELP up Whether the run completed."));
        assert!(text.contains("# TYPE up gauge"));
        assert!(text.contains("\nup 1\n"));
        assert!(text.contains("latency_seconds{phase=\"quorum\"} 0.0625"));
    }

    #[test]
    fn escapes_label_values() {
        let mut exp = Exposition::new();
        exp.sample_u64("m", &[("l", "a\"b\\c\nd")], 3);
        assert_eq!(exp.render(), "m{l=\"a\\\"b\\\\c\\nd\"} 3\n");
    }

    #[test]
    fn renders_histogram_family() {
        let mut h = LogHistogram::new();
        h.record(5);
        h.record(5);
        h.record(1_000_000_000); // one second, in ns
        let mut exp = Exposition::new();
        exp.histogram("lat_seconds", "Latency.", &[("setup", "gossip")], &h, 1e9);
        let text = exp.render();
        assert!(text.contains("# TYPE lat_seconds histogram"));
        // Buckets are cumulative and carry the shared labels plus `le`.
        assert!(text.contains("lat_seconds_bucket{setup=\"gossip\",le=\"0.000000005\"} 2"));
        assert!(text.contains("lat_seconds_bucket{setup=\"gossip\",le=\"+Inf\"} 3"));
        assert!(text.contains("lat_seconds_count{setup=\"gossip\"} 3"));
        assert!(text.contains("lat_seconds_sum{setup=\"gossip\"} 1.00000001"));
    }

    #[test]
    fn counts_events_by_kind() {
        let mk = |event| TimedEvent { at: 0, event };
        let events = vec![
            mk(Event::Crashed { node: 1 }),
            mk(Event::Crashed { node: 2 }),
            mk(Event::Recovered { node: 1 }),
        ];
        let counts = event_kind_counts(&events);
        assert_eq!(counts["crashed"], 2);
        assert_eq!(counts["recovered"], 1);
        assert_eq!(counts.len(), 2);
    }
}
