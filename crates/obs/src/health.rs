//! Consensus liveness tracking: per-instance lifecycle state and stall
//! detection.
//!
//! [`HealthTracker`] consumes the flat [`Event`] stream the Paxos and
//! gossip layers already emit and maintains the cluster's *pipeline
//! state*: which consensus instances are open, what lifecycle phase each
//! is in (proposed → voting → decided), and which submitted client values
//! have not yet been released in order. From that state it derives the
//! one liveness judgement the raw counters cannot express: **is the log
//! still advancing?**
//!
//! A *stall* is a progress gap, not a slow value. Under gossip some
//! client values are legitimately lost forever (a value submitted while
//! the coordinator is down is dropped by every non-coordinator), so
//! per-value timeouts would flag healthy runs. Instead the tracker
//! watches the in-order delivery frontier: when pending work exists
//! (open instances or undelivered submitted values) and no
//! `ordered_delivered` has occurred for longer than
//! [`HealthConfig::stall_after`], it emits one [`Event::StallDetected`]
//! naming the oldest open instance (or the log head when every seen
//! instance has closed), and one [`Event::StallCleared`] when delivery
//! resumes. The emitted events are regular trace events: they serialize
//! into the same JSONL stream and render in the same timeline as the
//! transitions that caused them.
//!
//! The tracker is sans-IO and clock-free like the rest of `obs`: it only
//! sees the timestamps carried by the events themselves, so it works
//! identically over simulated traces, live runs, and recorded files.

use std::collections::{BTreeMap, HashSet};

use crate::event::{Event, TimedEvent};

/// Lifecycle phase of an open consensus instance, as reconstructed from
/// the event stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Phase {
    /// A Phase 2a carried a value for the instance.
    Proposed,
    /// Phase 2b votes are arriving, no quorum observed yet.
    Voting,
    /// Decided (quorum or decision observed) but not yet released in
    /// instance order.
    Decided,
}

impl Phase {
    /// Stable lowercase name (used in emitted `stall_detected` events and
    /// gauge labels).
    pub fn name(self) -> &'static str {
        match self {
            Phase::Proposed => "proposed",
            Phase::Voting => "voting",
            Phase::Decided => "decided",
        }
    }
}

/// Label used for work that is pending but not yet tied to an instance
/// (submitted values before their Phase 2a), including the log head named
/// by a stall when no instance is open.
pub const PHASE_SUBMITTED: &str = "submitted";

/// Stall-detection thresholds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HealthConfig {
    /// Progress gap (nanoseconds of event time) after which pending work
    /// with no in-order delivery is declared stalled.
    pub stall_after: u64,
}

impl Default for HealthConfig {
    /// Two seconds: an order of magnitude above WAN decision latency,
    /// below any human-visible outage.
    fn default() -> Self {
        HealthConfig {
            stall_after: 2_000_000_000,
        }
    }
}

/// One open instance's tracked state.
#[derive(Debug, Clone, Copy)]
struct OpenInstance {
    phase: Phase,
    since: u64,
}

/// An active (detected, not yet cleared) stall.
#[derive(Debug, Clone, Copy)]
struct ActiveStall {
    instance: u64,
    /// The progress mark the gap is measured from.
    since: u64,
}

/// Aggregated liveness verdict over everything a tracker has observed.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HealthSummary {
    /// Stalls detected.
    pub stalls_detected: u64,
    /// Stalls that cleared (delivery resumed).
    pub stalls_cleared: u64,
    /// Longest progress gap spanned by any stall, in milliseconds
    /// (includes a still-active stall's gap up to the last event seen).
    pub max_stall_ms: u64,
    /// Instance named by the still-active stall, if any.
    pub stalled_instance: Option<u64>,
    /// Instances open (seen but not released in order) at the end.
    pub open_instances: u64,
    /// Submitted values never released in order.
    pub pending_values: u64,
}

/// Event-driven instance-lifecycle tracker and stall detector.
///
/// Feed it the (time-ordered) event stream via
/// [`observe`](HealthTracker::observe); collect the stall events it emits
/// with [`take_events`](HealthTracker::take_events) and the final verdict
/// with [`summary`](HealthTracker::summary). Call
/// [`finalize`](HealthTracker::finalize) once the stream ends so a stall
/// that began before the last event is still reported.
///
/// # Example
///
/// ```
/// use obs::health::{HealthConfig, HealthTracker};
/// use obs::{Event, TimedEvent};
///
/// let mut t = HealthTracker::new(HealthConfig { stall_after: 1_000 });
/// t.observe(&TimedEvent {
///     at: 0,
///     event: Event::ValueSubmitted { node: 0, origin: 0, seq: 1 },
/// });
/// t.finalize(5_000);
/// assert_eq!(t.summary().stalls_detected, 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct HealthTracker {
    cfg: HealthConfig,
    /// Submitted-but-not-yet-ordered values, keyed `(origin, seq)`.
    pending: BTreeMap<(u32, u64), u64>,
    /// Values for which a Phase 2a has been seen (no longer "submitted").
    proposed: HashSet<(u32, u64)>,
    /// Open instances, oldest first.
    instances: BTreeMap<u64, OpenInstance>,
    /// Instances already released in order. Guards against reopening an
    /// instance when another node's phase events arrive (in merged-trace
    /// time order) after the first node delivered it.
    closed: HashSet<u64>,
    highest_instance: Option<u64>,
    /// Time of the last in-order delivery anywhere.
    last_progress: Option<u64>,
    /// Time pending work first appeared (progress baseline before the
    /// first delivery).
    baseline: Option<u64>,
    last_seen: u64,
    last_node: u32,
    stall: Option<ActiveStall>,
    emitted: Vec<TimedEvent>,
    stalls_detected: u64,
    stalls_cleared: u64,
    max_stall_ns: u64,
}

impl HealthTracker {
    /// A tracker with the given thresholds.
    pub fn new(cfg: HealthConfig) -> Self {
        HealthTracker {
            cfg,
            ..HealthTracker::default()
        }
    }

    /// Consumes one event; may append stall events to the emitted buffer.
    ///
    /// Events must arrive in non-decreasing `at` order (the order every
    /// trace in this workspace is produced in).
    pub fn observe(&mut self, e: &TimedEvent) {
        self.last_seen = self.last_seen.max(e.at);
        self.last_node = e.event.node();
        match e.event {
            Event::ValueSubmitted { origin, seq, .. } => {
                self.pending.entry((origin, seq)).or_insert(e.at);
                self.baseline.get_or_insert(e.at);
            }
            Event::Phase2a {
                instance,
                origin,
                seq,
                ..
            } => {
                self.proposed.insert((origin, seq));
                self.open(instance, Phase::Proposed, e.at);
            }
            Event::Phase2b { instance, .. } => {
                self.open(instance, Phase::Voting, e.at);
            }
            Event::QuorumReached { instance, .. } | Event::Decided { instance, .. } => {
                self.open(instance, Phase::Decided, e.at);
            }
            Event::OrderedDelivered {
                node,
                instance,
                origin,
                seq,
            }
            | Event::DuplicateSuppressed {
                node,
                instance,
                origin,
                seq,
            } => {
                // Either way the ordering frontier advanced past `instance`.
                self.close(instance);
                self.pending.remove(&(origin, seq));
                self.progress(e.at, node);
            }
            _ => {}
        }
        self.check_stall(e.at, e.event.node());
    }

    /// Consumes a whole (time-ordered) slice of events.
    pub fn observe_all(&mut self, events: &[TimedEvent]) {
        for e in events {
            self.observe(e);
        }
    }

    /// Declares the end of the stream at `end`, so a stall whose threshold
    /// was crossed after the last observed event is still detected.
    pub fn finalize(&mut self, end: u64) {
        self.last_seen = self.last_seen.max(end);
        self.check_stall(self.last_seen, self.last_node);
    }

    fn open(&mut self, instance: u64, phase: Phase, at: u64) {
        self.highest_instance = Some(self.highest_instance.map_or(instance, |h| h.max(instance)));
        if self.closed.contains(&instance) {
            return;
        }
        self.baseline.get_or_insert(at);
        let entry = self
            .instances
            .entry(instance)
            .or_insert(OpenInstance { phase, since: at });
        // Phases only advance; a straggler 2b after the decision must not
        // demote the instance.
        entry.phase = entry.phase.max(phase);
    }

    fn close(&mut self, instance: u64) {
        self.highest_instance = Some(self.highest_instance.map_or(instance, |h| h.max(instance)));
        self.instances.remove(&instance);
        self.closed.insert(instance);
    }

    fn progress(&mut self, at: u64, node: u32) {
        self.last_progress = Some(at);
        if let Some(stall) = self.stall.take() {
            let gap = at.saturating_sub(stall.since);
            self.max_stall_ns = self.max_stall_ns.max(gap);
            self.stalls_cleared += 1;
            self.emitted.push(TimedEvent {
                at,
                event: Event::StallCleared {
                    node,
                    instance: stall.instance,
                    stalled_ms: gap / 1_000_000,
                },
            });
        }
    }

    /// The time progress gaps are measured from: the last delivery, or the
    /// moment pending work first appeared.
    fn progress_mark(&self) -> Option<u64> {
        self.last_progress.or(self.baseline)
    }

    fn check_stall(&mut self, now: u64, node: u32) {
        if self.stall.is_some() || !self.has_pending_work() {
            return;
        }
        let Some(mark) = self.progress_mark() else {
            return;
        };
        let gap = now.saturating_sub(mark);
        if gap <= self.cfg.stall_after {
            return;
        }
        let (instance, phase) = match self.instances.iter().next() {
            Some((&instance, open)) => (instance, open.phase.name()),
            // All seen instances closed: the stall is at the log head,
            // where submitted values wait for a coordinator to propose.
            None => (self.highest_instance.map_or(0, |h| h + 1), PHASE_SUBMITTED),
        };
        self.stall = Some(ActiveStall {
            instance,
            since: mark,
        });
        self.stalls_detected += 1;
        self.emitted.push(TimedEvent {
            at: now,
            event: Event::StallDetected {
                node,
                instance,
                phase: phase.to_string(),
                age_ms: gap / 1_000_000,
            },
        });
    }

    fn has_pending_work(&self) -> bool {
        !self.instances.is_empty() || !self.pending.is_empty()
    }

    /// Stall events emitted so far (detections and clearances, in order).
    pub fn events(&self) -> &[TimedEvent] {
        &self.emitted
    }

    /// Removes and returns the emitted stall events.
    pub fn take_events(&mut self) -> Vec<TimedEvent> {
        std::mem::take(&mut self.emitted)
    }

    /// Whether a detected stall is currently unresolved.
    pub fn is_stalled(&self) -> bool {
        self.stall.is_some()
    }

    /// Age of the oldest unresolved work item at `now` (oldest open
    /// instance or oldest undelivered submitted value), in nanoseconds.
    /// The headline liveness gauge: it climbs during a stall and drops
    /// back when delivery catches up.
    pub fn oldest_open_age(&self, now: u64) -> u64 {
        let oldest_instance = self.instances.values().map(|o| o.since).min();
        let oldest_value = self.pending.values().copied().min();
        match (oldest_instance, oldest_value) {
            (None, None) => 0,
            (a, b) => now.saturating_sub(a.unwrap_or(u64::MAX).min(b.unwrap_or(u64::MAX))),
        }
    }

    /// In-flight work per lifecycle phase, as `(phase name, count)` rows:
    /// submitted values awaiting a proposal, then instances in
    /// proposed / voting / decided.
    pub fn phase_counts(&self) -> [(&'static str, u64); 4] {
        let submitted = self
            .pending
            .keys()
            .filter(|k| !self.proposed.contains(*k))
            .count() as u64;
        let mut counts = [0u64; 3];
        for open in self.instances.values() {
            counts[open.phase as usize] += 1;
        }
        [
            (PHASE_SUBMITTED, submitted),
            (Phase::Proposed.name(), counts[Phase::Proposed as usize]),
            (Phase::Voting.name(), counts[Phase::Voting as usize]),
            (Phase::Decided.name(), counts[Phase::Decided as usize]),
        ]
    }

    /// The aggregated liveness verdict so far. An active stall contributes
    /// its gap up to the last event seen.
    pub fn summary(&self) -> HealthSummary {
        let mut max_stall_ns = self.max_stall_ns;
        if let Some(stall) = &self.stall {
            max_stall_ns = max_stall_ns.max(self.last_seen.saturating_sub(stall.since));
        }
        HealthSummary {
            stalls_detected: self.stalls_detected,
            stalls_cleared: self.stalls_cleared,
            max_stall_ms: max_stall_ns / 1_000_000,
            stalled_instance: self.stall.as_ref().map(|s| s.instance),
            open_instances: self.instances.len() as u64,
            pending_values: self.pending.len() as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MS: u64 = 1_000_000;

    fn tracker(stall_after_ms: u64) -> HealthTracker {
        HealthTracker::new(HealthConfig {
            stall_after: stall_after_ms * MS,
        })
    }

    fn ev(at_ms: u64, event: Event) -> TimedEvent {
        TimedEvent {
            at: at_ms * MS,
            event,
        }
    }

    fn lifecycle(instance: u64, origin: u32, seq: u64, start_ms: u64) -> Vec<TimedEvent> {
        vec![
            ev(
                start_ms,
                Event::ValueSubmitted {
                    node: 1,
                    origin,
                    seq,
                },
            ),
            ev(
                start_ms + 5,
                Event::Phase2a {
                    node: 0,
                    instance,
                    round: 0,
                    origin,
                    seq,
                },
            ),
            ev(
                start_ms + 10,
                Event::Phase2b {
                    node: 2,
                    instance,
                    round: 0,
                    voters: 1,
                },
            ),
            ev(
                start_ms + 15,
                Event::Decided {
                    node: 0,
                    instance,
                    origin,
                    seq,
                },
            ),
            ev(
                start_ms + 20,
                Event::OrderedDelivered {
                    node: 0,
                    instance,
                    origin,
                    seq,
                },
            ),
        ]
    }

    #[test]
    fn clean_pipeline_reports_no_stalls() {
        let mut t = tracker(1_000);
        for i in 0..5 {
            t.observe_all(&lifecycle(i, 1, i, i * 100));
        }
        t.finalize(5_000 * MS);
        let s = t.summary();
        assert_eq!(s.stalls_detected, 0);
        assert_eq!(s.open_instances, 0);
        assert_eq!(s.pending_values, 0);
        assert!(t.events().is_empty());
    }

    #[test]
    fn delayed_decision_raises_exactly_one_stall_then_clears() {
        // The satellite-mandated schedule: an instance enters voting, the
        // decision is delayed past the threshold, then delivery resumes.
        let mut t = tracker(1_000);
        t.observe(&ev(
            0,
            Event::ValueSubmitted {
                node: 1,
                origin: 1,
                seq: 7,
            },
        ));
        t.observe(&ev(
            5,
            Event::Phase2a {
                node: 0,
                instance: 3,
                round: 0,
                origin: 1,
                seq: 7,
            },
        ));
        t.observe(&ev(
            10,
            Event::Phase2b {
                node: 2,
                instance: 3,
                round: 0,
                voters: 1,
            },
        ));
        // Unrelated traffic while the decision is delayed: each event
        // drives the detector, but only one stall may fire.
        for at in [500u64, 1_200, 1_800, 2_400] {
            t.observe(&ev(
                at,
                Event::QueueDepthSampled {
                    node: 2,
                    peer: 0,
                    depth: 1,
                },
            ));
        }
        t.observe(&ev(
            3_000,
            Event::OrderedDelivered {
                node: 0,
                instance: 3,
                origin: 1,
                seq: 7,
            },
        ));
        t.finalize(3_100 * MS);

        let events = t.events();
        assert_eq!(events.len(), 2, "exactly one detection and one clearance");
        match &events[0].event {
            Event::StallDetected {
                instance,
                phase,
                age_ms,
                ..
            } => {
                assert_eq!(*instance, 3, "names the stuck instance");
                assert_eq!(phase, "voting");
                assert!(*age_ms >= 1_000);
            }
            other => panic!("expected stall_detected, got {other:?}"),
        }
        match &events[1].event {
            Event::StallCleared {
                instance,
                stalled_ms,
                ..
            } => {
                assert_eq!(*instance, 3);
                assert_eq!(*stalled_ms, 3_000, "full progress gap");
            }
            other => panic!("expected stall_cleared, got {other:?}"),
        }
        let s = t.summary();
        assert_eq!((s.stalls_detected, s.stalls_cleared), (1, 1));
        assert_eq!(s.max_stall_ms, 3_000);
        assert_eq!(s.stalled_instance, None);
    }

    #[test]
    fn stall_with_no_open_instance_names_the_log_head() {
        let mut t = tracker(1_000);
        t.observe_all(&lifecycle(4, 1, 1, 0));
        // A value submitted after instance 4 closed, never proposed.
        t.observe(&ev(
            100,
            Event::ValueSubmitted {
                node: 2,
                origin: 2,
                seq: 9,
            },
        ));
        t.observe(&ev(
            2_000,
            Event::Mark {
                node: 2,
                label: "tick".into(),
            },
        ));
        let events = t.events();
        assert_eq!(events.len(), 1);
        match &events[0].event {
            Event::StallDetected {
                instance, phase, ..
            } => {
                assert_eq!(*instance, 5, "log head = highest seen + 1");
                assert_eq!(phase, PHASE_SUBMITTED);
            }
            other => panic!("expected stall_detected, got {other:?}"),
        }
        assert!(t.is_stalled());
        assert_eq!(t.summary().stalled_instance, Some(5));
    }

    #[test]
    fn finalize_detects_a_stall_past_the_last_event() {
        let mut t = tracker(1_000);
        t.observe(&ev(
            0,
            Event::ValueSubmitted {
                node: 0,
                origin: 0,
                seq: 1,
            },
        ));
        assert!(t.events().is_empty());
        t.finalize(5_000 * MS);
        assert_eq!(t.summary().stalls_detected, 1);
        assert_eq!(t.summary().stalls_cleared, 0);
        assert!(t.summary().max_stall_ms >= 4_000);
    }

    #[test]
    fn lost_values_alone_do_not_stall_while_log_advances() {
        // A value lost forever must not trip the detector as long as other
        // values keep being delivered (the failover scenario).
        let mut t = tracker(1_000);
        t.observe(&ev(
            0,
            Event::ValueSubmitted {
                node: 3,
                origin: 3,
                seq: 1,
            },
        ));
        for i in 0..10 {
            t.observe_all(&lifecycle(i, 1, i, 10 + i * 500));
        }
        t.finalize(5_000 * MS);
        assert_eq!(t.summary().stalls_detected, 0);
        assert_eq!(t.summary().pending_values, 1);
    }

    #[test]
    fn straggler_vote_does_not_reopen_a_closed_instance() {
        let mut t = tracker(1_000);
        t.observe_all(&lifecycle(0, 1, 1, 0));
        // Another node's late 2b for the already-released instance.
        t.observe(&ev(
            30,
            Event::Phase2b {
                node: 4,
                instance: 0,
                round: 0,
                voters: 1,
            },
        ));
        t.finalize(5_000 * MS);
        assert_eq!(t.summary().open_instances, 0);
        assert_eq!(t.summary().stalls_detected, 0);
    }

    #[test]
    fn gauges_track_phases_and_age() {
        let mut t = tracker(10_000);
        t.observe(&ev(
            0,
            Event::ValueSubmitted {
                node: 0,
                origin: 0,
                seq: 1,
            },
        ));
        t.observe(&ev(
            0,
            Event::ValueSubmitted {
                node: 0,
                origin: 0,
                seq: 2,
            },
        ));
        t.observe(&ev(
            10,
            Event::Phase2a {
                node: 0,
                instance: 0,
                round: 0,
                origin: 0,
                seq: 1,
            },
        ));
        t.observe(&ev(
            20,
            Event::Phase2b {
                node: 1,
                instance: 1,
                round: 0,
                voters: 1,
            },
        ));
        t.observe(&ev(
            30,
            Event::Decided {
                node: 0,
                instance: 2,
                origin: 0,
                seq: 9,
            },
        ));
        let counts = t.phase_counts();
        assert_eq!(counts[0], (PHASE_SUBMITTED, 1)); // seq 2 still unproposed
        assert_eq!(counts[1], ("proposed", 1));
        assert_eq!(counts[2], ("voting", 1));
        assert_eq!(counts[3], ("decided", 1));
        assert_eq!(t.oldest_open_age(100 * MS), 100 * MS);
        assert_eq!(HealthTracker::default().oldest_open_age(5), 0);
    }
}
