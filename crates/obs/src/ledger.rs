//! Resource attribution: which message class burns the wire and the CPU.
//!
//! The paper's central trade-off — semantic filtering/aggregation buys
//! bandwidth at the cost of coordination work — is only visible when bytes
//! and CPU time are attributed to *message classes* (ClientValue vs
//! Phase1b/2a/2b vs Decision), not just summed per node. [`ResourceLedger`]
//! is that attribution substrate: a deterministic, sans-IO table of
//! `(subsystem, class)` cells, each accumulating message counts, bytes in
//! and out, and scoped CPU nanoseconds.
//!
//! Clock discipline: the ledger never reads a clock. CPU time enters either
//! as an explicit nanosecond charge (`charge_cpu` — what the simulator
//! does, feeding its modelled service times) or through a [`CpuScope`]
//! drop-guard driven by a caller-supplied [`LedgerClock`] (what live
//! runtimes do, handing in monotonic nanoseconds). Library code therefore
//! stays `Instant`-free and the identical ledger works on simulated and
//! wall-clock time.
//!
//! Keys are plain strings: `obs` sits below every protocol crate and cannot
//! name `paxos::Kind`, and string keys let the same ledger attribute Raft
//! traffic or transport-internal classes without a registry. Cardinality is
//! tiny (a handful of subsystems × seven Paxos classes), so cells live in a
//! linear-scanned `Vec` — no hashing on the hot path, deterministic report
//! order via a sort at read time.
//!
//! [`TraceLedger`] is the post-hoc twin: it replays a recorded JSONL trace,
//! joins byte-carrying wire events to the classes declared by `wire_tagged`
//! events, and reports how much of the wire it could attribute — the
//! `tracetool ledger` command and the ≥95%-attribution CI gate are built on
//! it.

use std::collections::HashMap;

use crate::event::{Event, TimedEvent};
use crate::json::JsonValue;

/// Subsystem name for the gossip receive/dissemination path.
pub const SUBSYS_GOSSIP: &str = "gossip";
/// Subsystem name for Paxos protocol step functions.
pub const SUBSYS_PAXOS: &str = "paxos";
/// Subsystem name for the semantic filter/aggregator.
pub const SUBSYS_SEMANTICS: &str = "semantics";
/// Subsystem name for the transport write/read path.
pub const SUBSYS_TRANSPORT: &str = "transport";

/// Class name used when a resource cannot be attributed to a concrete
/// message class (e.g. a wire message whose `wire_tagged` declaration was
/// evicted from a bounded trace ring).
pub const CLASS_UNCLASSIFIED: &str = "unclassified";

/// A monotonic nanosecond clock the ledger's [`CpuScope`] reads.
///
/// `obs` never owns a clock: the simulator implements this over virtual
/// time, live runtimes over `Instant`-derived nanoseconds, and tests over
/// a [`ManualClock`].
pub trait LedgerClock {
    /// Current time in nanoseconds on an arbitrary, monotone epoch.
    fn now_nanos(&self) -> u64;
}

/// A hand-advanced [`LedgerClock`] for tests and simulated drivers.
#[derive(Debug, Default)]
pub struct ManualClock(std::cell::Cell<u64>);

impl ManualClock {
    /// A clock starting at `now` nanoseconds.
    pub fn new(now: u64) -> Self {
        ManualClock(std::cell::Cell::new(now))
    }

    /// Advances the clock by `ns` nanoseconds.
    pub fn advance(&self, ns: u64) {
        self.0.set(self.0.get().saturating_add(ns));
    }
}

impl LedgerClock for ManualClock {
    fn now_nanos(&self) -> u64 {
        self.0.get()
    }
}

/// One `(subsystem, class)` attribution cell.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LedgerCell {
    /// Which layer did the work (see the `SUBSYS_*` constants).
    pub subsystem: String,
    /// Which message class the work served (Paxos kind name, or
    /// [`CLASS_UNCLASSIFIED`]).
    pub class: String,
    /// Messages accounted in this cell (outgoing + incoming).
    pub messages: u64,
    /// Bytes encoded/sent for this class by this subsystem.
    pub bytes_out: u64,
    /// Bytes received for this class by this subsystem.
    pub bytes_in: u64,
    /// Scoped CPU nanoseconds attributed to this cell.
    pub cpu_ns: u64,
}

/// Deterministic, sans-IO per-`(subsystem, class)` resource accounting.
///
/// See the [module docs](self) for the design; in short: string keys,
/// linear-scan storage, no clock, mergeable across nodes and runs.
#[derive(Debug, Clone, Default)]
pub struct ResourceLedger {
    cells: Vec<LedgerCell>,
}

impl ResourceLedger {
    /// An empty ledger.
    pub fn new() -> Self {
        ResourceLedger::default()
    }

    fn cell_mut(&mut self, subsystem: &str, class: &str) -> &mut LedgerCell {
        // Linear scan: cardinality is a few dozen cells at most, and the
        // common case hits the most recently used cell near the end.
        if let Some(i) = self
            .cells
            .iter()
            .position(|c| c.subsystem == subsystem && c.class == class)
        {
            return &mut self.cells[i];
        }
        self.cells.push(LedgerCell {
            subsystem: subsystem.to_string(),
            class: class.to_string(),
            ..LedgerCell::default()
        });
        self.cells.last_mut().unwrap()
    }

    /// Attributes one outgoing message of `bytes` to `(subsystem, class)`.
    pub fn add_out(&mut self, subsystem: &str, class: &str, bytes: u64) {
        let cell = self.cell_mut(subsystem, class);
        cell.messages += 1;
        cell.bytes_out += bytes;
    }

    /// Attributes one incoming message of `bytes` to `(subsystem, class)`.
    pub fn add_in(&mut self, subsystem: &str, class: &str, bytes: u64) {
        let cell = self.cell_mut(subsystem, class);
        cell.messages += 1;
        cell.bytes_in += bytes;
    }

    /// Adds `n` messages to `(subsystem, class)` without byte or CPU
    /// accounting — for count-only feeds such as per-kind handled/filtered
    /// counters folded in at the end of a run.
    pub fn add_messages(&mut self, subsystem: &str, class: &str, n: u64) {
        self.cell_mut(subsystem, class).messages += n;
    }

    /// Attributes `ns` nanoseconds of CPU to `(subsystem, class)` without
    /// touching the message count (pair with `add_in`/`add_out`, or use for
    /// work not tied to one message).
    pub fn charge_cpu(&mut self, subsystem: &str, class: &str, ns: u64) {
        self.cell_mut(subsystem, class).cpu_ns += ns;
    }

    /// Opens a scoped CPU measurement against `(subsystem, class)`; the
    /// elapsed time on `clock` is charged when the returned guard drops.
    pub fn cpu_scope<'a, C: LedgerClock>(
        &'a mut self,
        clock: &'a C,
        subsystem: &'a str,
        class: &'a str,
    ) -> CpuScope<'a, C> {
        CpuScope {
            started: clock.now_nanos(),
            clock,
            ledger: self,
            subsystem,
            class,
        }
    }

    /// Merges another ledger cell-wise (cluster-wide and cross-run
    /// aggregation). Commutative and associative.
    pub fn merge(&mut self, other: &ResourceLedger) {
        for c in &other.cells {
            let cell = self.cell_mut(&c.subsystem, &c.class);
            cell.messages += c.messages;
            cell.bytes_out += c.bytes_out;
            cell.bytes_in += c.bytes_in;
            cell.cpu_ns += c.cpu_ns;
        }
    }

    /// All cells, sorted by `(subsystem, class)` for deterministic output.
    pub fn cells(&self) -> Vec<LedgerCell> {
        let mut cells = self.cells.clone();
        cells.sort_by(|a, b| (&a.subsystem, &a.class).cmp(&(&b.subsystem, &b.class)));
        cells
    }

    /// Whether any cell has accumulated anything.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Total bytes out across all cells.
    pub fn total_bytes_out(&self) -> u64 {
        self.cells.iter().map(|c| c.bytes_out).sum()
    }

    /// Total bytes in across all cells.
    pub fn total_bytes_in(&self) -> u64 {
        self.cells.iter().map(|c| c.bytes_in).sum()
    }

    /// Total CPU nanoseconds across all cells.
    pub fn total_cpu_ns(&self) -> u64 {
        self.cells.iter().map(|c| c.cpu_ns).sum()
    }

    /// Bytes out attributed per class (summed over subsystems), sorted by
    /// class name.
    pub fn bytes_out_by_class(&self) -> Vec<(String, u64)> {
        let mut per: Vec<(String, u64)> = Vec::new();
        for c in &self.cells {
            if c.bytes_out == 0 {
                continue;
            }
            match per.iter_mut().find(|(name, _)| *name == c.class) {
                Some((_, b)) => *b += c.bytes_out,
                None => per.push((c.class.clone(), c.bytes_out)),
            }
        }
        per.sort();
        per
    }

    /// Human-readable attribution table.
    pub fn report(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<12} {:<12} {:>10} {:>14} {:>14} {:>14}\n",
            "subsystem", "class", "messages", "bytes_out", "bytes_in", "cpu_ms"
        ));
        out.push_str(&format!("{}\n", "-".repeat(80)));
        for c in self.cells() {
            out.push_str(&format!(
                "{:<12} {:<12} {:>10} {:>14} {:>14} {:>14.3}\n",
                c.subsystem,
                c.class,
                c.messages,
                c.bytes_out,
                c.bytes_in,
                c.cpu_ns as f64 / 1e6,
            ));
        }
        out.push_str(&format!(
            "{:<12} {:<12} {:>10} {:>14} {:>14} {:>14.3}\n",
            "total",
            "",
            self.cells.iter().map(|c| c.messages).sum::<u64>(),
            self.total_bytes_out(),
            self.total_bytes_in(),
            self.total_cpu_ns() as f64 / 1e6,
        ));
        out
    }

    /// The same table as CSV (header + one row per cell).
    pub fn csv(&self) -> String {
        let mut out = String::from("subsystem,class,messages,bytes_out,bytes_in,cpu_ns\n");
        for c in self.cells() {
            out.push_str(&format!(
                "{},{},{},{},{},{}\n",
                c.subsystem, c.class, c.messages, c.bytes_out, c.bytes_in, c.cpu_ns
            ));
        }
        out
    }

    /// The ledger as a JSON array of cell objects.
    pub fn to_json(&self) -> JsonValue {
        JsonValue::Arr(
            self.cells()
                .into_iter()
                .map(|c| {
                    let mut map = std::collections::BTreeMap::new();
                    map.insert("subsystem".to_string(), JsonValue::Str(c.subsystem));
                    map.insert("class".to_string(), JsonValue::Str(c.class));
                    map.insert("messages".to_string(), JsonValue::Int(c.messages as i128));
                    map.insert("bytes_out".to_string(), JsonValue::Int(c.bytes_out as i128));
                    map.insert("bytes_in".to_string(), JsonValue::Int(c.bytes_in as i128));
                    map.insert("cpu_ns".to_string(), JsonValue::Int(c.cpu_ns as i128));
                    JsonValue::Obj(map)
                })
                .collect(),
        )
    }
}

/// Drop-guard that charges elapsed [`LedgerClock`] time to a ledger cell.
///
/// Obtained from [`ResourceLedger::cpu_scope`]; the charge happens on drop,
/// so early returns and `?` propagation inside the scope stay accounted.
pub struct CpuScope<'a, C: LedgerClock> {
    started: u64,
    clock: &'a C,
    ledger: &'a mut ResourceLedger,
    subsystem: &'a str,
    class: &'a str,
}

impl<C: LedgerClock> Drop for CpuScope<'_, C> {
    fn drop(&mut self) {
        let elapsed = self.clock.now_nanos().saturating_sub(self.started);
        self.ledger.charge_cpu(self.subsystem, self.class, elapsed);
    }
}

/// Post-hoc byte/CPU attribution replayed from a recorded trace.
///
/// Folds a JSONL event stream: `wire_tagged` declares the message class of
/// each locally-broadcast wire id; `wire_frame` (simulated sends) and
/// `frame_shared` (live encode-once broadcasts, `fanout × bytes`) carry the
/// bytes; `cpu_charged` summaries carry modelled CPU. Bytes whose wire id
/// has no surviving tag land in [`CLASS_UNCLASSIFIED`] and count against
/// [`TraceLedger::attribution_ratio`] — the CI gate requires ≥95%.
///
/// Transport-level `frame_sent` / `frames_coalesced` events describe the
/// *same* frames the classifiable events already account (a frame shared to
/// k peers is later sent k times), so they are tallied separately as a
/// cross-check, never added into the ledger — adding both would double
/// count.
#[derive(Debug, Clone, Default)]
pub struct TraceLedger {
    /// Wire message id → declared class (from `wire_tagged`).
    tags: HashMap<u64, String>,
    /// The attribution table being built.
    pub ledger: ResourceLedger,
    /// Bytes from byte-carrying wire events joined to a class.
    pub attributed_bytes: u64,
    /// Bytes from byte-carrying wire events with no surviving tag.
    pub unattributed_bytes: u64,
    /// Cross-check only: bytes seen by transport `frame_sent` events.
    pub transport_frame_bytes: u64,
    /// Cross-check only: frames seen by transport `frame_sent` events.
    pub transport_frames: u64,
    /// Per-class outgoing wire messages suppressed by the semantic filter.
    filtered_by_class: HashMap<String, u64>,
    /// Per-class gossip sends (queued toward peers).
    sent_by_class: HashMap<String, u64>,
}

impl TraceLedger {
    /// An empty replay ledger.
    pub fn new() -> Self {
        TraceLedger::default()
    }

    fn class_of(&self, msg: u64) -> String {
        self.tags
            .get(&msg)
            .cloned()
            .unwrap_or_else(|| CLASS_UNCLASSIFIED.to_string())
    }

    /// Pre-learns wire-id → class joins from `wire_tagged` declarations
    /// and inline `wire_frame` kinds, without tallying anything. Replays
    /// that see a whole run at once (not a live stream) should run this
    /// first: a `gossip_sent` for a drain-time aggregate precedes the
    /// `wire_frame` that declares its class, and without the pre-pass its
    /// count would land in [`CLASS_UNCLASSIFIED`].
    pub fn seed_tags<'a>(&mut self, events: impl IntoIterator<Item = &'a TimedEvent>) {
        for ev in events {
            match &ev.event {
                Event::WireTagged { msg, kind, .. } => {
                    self.tags.insert(*msg, kind.clone());
                }
                Event::WireFrame { msg, kind, .. } if !kind.is_empty() => {
                    self.tags.insert(*msg, kind.clone());
                }
                _ => {}
            }
        }
    }

    /// Folds one trace event into the attribution table.
    pub fn observe(&mut self, ev: &TimedEvent) {
        match &ev.event {
            Event::WireTagged { msg, kind, .. } => {
                self.tags.insert(*msg, kind.clone());
            }
            Event::WireFrame {
                msg, kind, bytes, ..
            } => {
                // Prefer the sender's inline class declaration; an empty
                // `kind` (hand-written or older traces) falls back to the
                // `wire_tagged` join.
                let class = if kind.is_empty() {
                    self.class_of(*msg)
                } else {
                    kind.clone()
                };
                if class == CLASS_UNCLASSIFIED {
                    self.unattributed_bytes += *bytes;
                } else {
                    self.attributed_bytes += *bytes;
                }
                self.ledger.add_out(SUBSYS_TRANSPORT, &class, *bytes);
            }
            Event::FrameShared {
                msg, fanout, bytes, ..
            } => {
                let class = self.class_of(*msg);
                let total = fanout.saturating_mul(*bytes);
                if class == CLASS_UNCLASSIFIED {
                    self.unattributed_bytes += total;
                } else {
                    self.attributed_bytes += total;
                }
                let cell = self.ledger.cell_mut(SUBSYS_TRANSPORT, &class);
                cell.messages += *fanout;
                cell.bytes_out += total;
            }
            Event::FrameSent { bytes, .. } => {
                self.transport_frame_bytes += *bytes;
                self.transport_frames += 1;
            }
            Event::CpuCharged {
                subsystem,
                class,
                ns,
                ..
            } => {
                self.ledger.charge_cpu(subsystem, class, *ns);
            }
            Event::SemanticFiltered { msg, .. } => {
                let class = self.class_of(*msg);
                *self.filtered_by_class.entry(class).or_insert(0) += 1;
            }
            Event::GossipSent { msg, .. } => {
                let class = self.class_of(*msg);
                *self.sent_by_class.entry(class).or_insert(0) += 1;
            }
            _ => {}
        }
    }

    /// Merges another replay ledger's totals into this one (multi-run
    /// traces: one `TraceLedger` per run, merged after). Tag tables are
    /// deliberately *not* merged — wire ids are reused across runs, so
    /// class joins must never cross a run boundary.
    pub fn merge(&mut self, other: &TraceLedger) {
        self.ledger.merge(&other.ledger);
        self.attributed_bytes += other.attributed_bytes;
        self.unattributed_bytes += other.unattributed_bytes;
        self.transport_frame_bytes += other.transport_frame_bytes;
        self.transport_frames += other.transport_frames;
        for (k, v) in &other.filtered_by_class {
            *self.filtered_by_class.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.sent_by_class {
            *self.sent_by_class.entry(k.clone()).or_insert(0) += v;
        }
    }

    /// Share of byte-carrying wire bytes that joined to a concrete class,
    /// in `[0, 1]`; `1.0` when the trace carried no byte events.
    pub fn attribution_ratio(&self) -> f64 {
        let total = self.attributed_bytes + self.unattributed_bytes;
        if total == 0 {
            1.0
        } else {
            self.attributed_bytes as f64 / total as f64
        }
    }

    /// Per-class `(sent, filtered)` counts, sorted by class — the paper's
    /// filtering savings broken down by message class.
    pub fn send_filter_by_class(&self) -> Vec<(String, u64, u64)> {
        let mut classes: Vec<&String> = self
            .sent_by_class
            .keys()
            .chain(self.filtered_by_class.keys())
            .collect();
        classes.sort();
        classes.dedup();
        classes
            .into_iter()
            .map(|c| {
                (
                    c.clone(),
                    self.sent_by_class.get(c).copied().unwrap_or(0),
                    self.filtered_by_class.get(c).copied().unwrap_or(0),
                )
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cells_accumulate_and_sort() {
        let mut l = ResourceLedger::new();
        l.add_out(SUBSYS_TRANSPORT, "phase2b", 100);
        l.add_out(SUBSYS_TRANSPORT, "phase2b", 50);
        l.add_in(SUBSYS_GOSSIP, "decision", 30);
        l.charge_cpu(SUBSYS_PAXOS, "phase2b", 1_000);
        let cells = l.cells();
        assert_eq!(cells.len(), 3);
        // Sorted by (subsystem, class).
        assert_eq!(cells[0].subsystem, SUBSYS_GOSSIP);
        assert_eq!(cells[1].subsystem, SUBSYS_PAXOS);
        assert_eq!(cells[2].subsystem, SUBSYS_TRANSPORT);
        assert_eq!(cells[2].messages, 2);
        assert_eq!(cells[2].bytes_out, 150);
        assert_eq!(cells[0].bytes_in, 30);
        assert_eq!(cells[1].cpu_ns, 1_000);
        assert_eq!(l.total_bytes_out(), 150);
        assert_eq!(l.total_bytes_in(), 30);
        assert_eq!(l.total_cpu_ns(), 1_000);
    }

    #[test]
    fn merge_is_cellwise_addition() {
        let mut a = ResourceLedger::new();
        a.add_out(SUBSYS_GOSSIP, "phase2a", 10);
        a.charge_cpu(SUBSYS_GOSSIP, "phase2a", 5);
        let mut b = ResourceLedger::new();
        b.add_out(SUBSYS_GOSSIP, "phase2a", 7);
        b.add_in(SUBSYS_TRANSPORT, "decision", 3);

        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab.cells(), ba.cells(), "merge must be commutative");

        let g = &ab.cells()[0];
        assert_eq!(g.bytes_out, 17);
        assert_eq!(g.messages, 2);
        assert_eq!(g.cpu_ns, 5);
    }

    #[test]
    fn cpu_scope_charges_elapsed_on_drop() {
        let clock = ManualClock::new(1_000);
        let mut l = ResourceLedger::new();
        {
            let _scope = l.cpu_scope(&clock, SUBSYS_SEMANTICS, "phase2b");
            clock.advance(250);
        }
        assert_eq!(l.cells()[0].cpu_ns, 250);
        // A second scope accumulates into the same cell.
        {
            let _scope = l.cpu_scope(&clock, SUBSYS_SEMANTICS, "phase2b");
            clock.advance(50);
        }
        assert_eq!(l.cells()[0].cpu_ns, 300);
        assert_eq!(l.cells().len(), 1);
    }

    #[test]
    fn report_and_csv_cover_all_cells() {
        let mut l = ResourceLedger::new();
        l.add_out(SUBSYS_TRANSPORT, "client_value", 1024);
        l.charge_cpu(SUBSYS_PAXOS, "client_value", 2_000_000);
        let report = l.report();
        assert!(report.contains("client_value"));
        assert!(report.contains("transport"));
        assert!(report.contains("total"));
        let csv = l.csv();
        assert_eq!(csv.lines().count(), 3); // header + 2 cells
        assert!(csv.starts_with("subsystem,class,"));
        assert!(csv.contains("transport,client_value,1,1024,0,0"));
        let json = l.to_json().render();
        assert!(json.contains("\"bytes_out\":1024"));
    }

    fn te(event: Event) -> TimedEvent {
        TimedEvent { at: 0, event }
    }

    #[test]
    fn trace_ledger_joins_bytes_to_tags() {
        let mut t = TraceLedger::new();
        t.observe(&te(Event::WireTagged {
            node: 0,
            msg: 42,
            kind: "phase2b".into(),
            instance: 1,
            origin: 0,
            seq: 0,
        }));
        t.observe(&te(Event::WireFrame {
            node: 0,
            peer: 1,
            msg: 42,
            kind: String::new(), // no inline class: joins via the tag
            bytes: 100,
        }));
        t.observe(&te(Event::WireFrame {
            node: 0,
            peer: 2,
            msg: 999, // never tagged, no inline class
            kind: String::new(),
            bytes: 40,
        }));
        assert_eq!(t.attributed_bytes, 100);
        assert_eq!(t.unattributed_bytes, 40);
        assert!((t.attribution_ratio() - 100.0 / 140.0).abs() < 1e-12);
        let cells = t.ledger.cells();
        assert_eq!(cells.len(), 2);
        assert_eq!(cells[0].class, "phase2b");
        assert_eq!(cells[0].bytes_out, 100);
        assert_eq!(cells[1].class, CLASS_UNCLASSIFIED);
    }

    #[test]
    fn trace_ledger_prefers_inline_kind_over_tag_join() {
        let mut t = TraceLedger::new();
        // No wire_tagged event exists for msg 7 (e.g. a drain-time
        // aggregate with a fresh wire id, or a direct-mode send) — the
        // inline declaration still classifies it.
        t.observe(&te(Event::WireFrame {
            node: 0,
            peer: 1,
            msg: 7,
            kind: "Phase2b(agg)".into(),
            bytes: 64,
        }));
        assert_eq!(t.attributed_bytes, 64);
        assert_eq!(t.unattributed_bytes, 0);
        assert_eq!(t.ledger.cells()[0].class, "Phase2b(agg)");
    }

    #[test]
    fn trace_ledger_expands_shared_frames_by_fanout() {
        let mut t = TraceLedger::new();
        t.observe(&te(Event::WireTagged {
            node: 3,
            msg: 7,
            kind: "decision".into(),
            instance: 9,
            origin: 3,
            seq: 1,
        }));
        t.observe(&te(Event::FrameShared {
            node: 3,
            msg: 7,
            fanout: 4,
            bytes: 250,
        }));
        assert_eq!(t.attributed_bytes, 1_000);
        let cells = t.ledger.cells();
        assert_eq!(cells[0].messages, 4);
        assert_eq!(cells[0].bytes_out, 1_000);
        // frame_sent is a cross-check, never double-added to the ledger.
        t.observe(&te(Event::FrameSent {
            node: 3,
            peer: 1,
            bytes: 250,
        }));
        assert_eq!(t.transport_frame_bytes, 250);
        assert_eq!(t.ledger.total_bytes_out(), 1_000);
    }

    #[test]
    fn trace_ledger_folds_cpu_and_filter_counts() {
        let mut t = TraceLedger::new();
        t.observe(&te(Event::WireTagged {
            node: 0,
            msg: 1,
            kind: "phase2b".into(),
            instance: 0,
            origin: 0,
            seq: 0,
        }));
        t.observe(&te(Event::CpuCharged {
            node: 0,
            subsystem: SUBSYS_PAXOS.into(),
            class: "phase2b".into(),
            ns: 5_000,
        }));
        t.observe(&te(Event::GossipSent {
            node: 0,
            to: 1,
            msg: 1,
        }));
        t.observe(&te(Event::SemanticFiltered { node: 0, msg: 1 }));
        assert_eq!(t.ledger.total_cpu_ns(), 5_000);
        let rows = t.send_filter_by_class();
        assert_eq!(rows, vec![("phase2b".to_string(), 1, 1)]);
    }

    #[test]
    fn attribution_ratio_empty_trace_is_one() {
        assert_eq!(TraceLedger::new().attribution_ratio(), 1.0);
    }
}
