//! Minimal JSON encoder/decoder for trace serialization.
//!
//! `obs` is deliberately dependency-free, so JSONL trace emission cannot
//! lean on serde. This module implements exactly the JSON subset traces
//! need: objects, arrays, strings, booleans, null, and numbers — with
//! integers carried as `i128` so `u64` event fields survive a round trip
//! bit-exactly (an `f64` mantissa would silently corrupt values above
//! 2^53).

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number without fraction or exponent, kept exact.
    Int(i128),
    /// A number with fraction or exponent.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object; keys sorted for deterministic output.
    Obj(BTreeMap<String, JsonValue>),
}

impl JsonValue {
    /// The value as an unsigned integer, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Int(i) => u64::try_from(*i).ok(),
            _ => None,
        }
    }

    /// The value as a float; integer values convert.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Float(x) => Some(*x),
            JsonValue::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an object, if it is one.
    pub fn as_obj(&self) -> Option<&BTreeMap<String, JsonValue>> {
        match self {
            JsonValue::Obj(m) => Some(m),
            _ => None,
        }
    }

    /// Serializes to compact JSON.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Int(i) => {
                let _ = write!(out, "{i}");
            }
            JsonValue::Float(x) => {
                if x.is_finite() {
                    let _ = write!(out, "{x}");
                } else {
                    // JSON has no Inf/NaN; null is the conventional fallback.
                    out.push_str("null");
                }
            }
            JsonValue::Str(s) => write_escaped(s, out),
            JsonValue::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            JsonValue::Obj(map) => {
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses one JSON document; trailing whitespace is allowed, trailing
    /// garbage is an error.
    pub fn parse(input: &str) -> Result<JsonValue, JsonError> {
        let bytes = input.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(JsonError::at(pos, "trailing characters"));
        }
        Ok(value)
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure with byte offset context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset the error was detected at.
    pub offset: usize,
    /// What went wrong.
    pub message: &'static str,
}

impl JsonError {
    fn at(offset: usize, message: &'static str) -> Self {
        JsonError { offset, message }
    }
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(
    bytes: &[u8],
    pos: &mut usize,
    token: &'static [u8],
    what: &'static str,
) -> Result<(), JsonError> {
    if bytes.len() - *pos >= token.len() && &bytes[*pos..*pos + token.len()] == token {
        *pos += token.len();
        Ok(())
    } else {
        Err(JsonError::at(*pos, what))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, JsonError> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(JsonError::at(*pos, "unexpected end of input")),
        Some(b'n') => expect(bytes, pos, b"null", "expected null").map(|()| JsonValue::Null),
        Some(b't') => expect(bytes, pos, b"true", "expected true").map(|()| JsonValue::Bool(true)),
        Some(b'f') => {
            expect(bytes, pos, b"false", "expected false").map(|()| JsonValue::Bool(false))
        }
        Some(b'"') => parse_string(bytes, pos).map(JsonValue::Str),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'-' | b'0'..=b'9') => parse_number(bytes, pos),
        Some(_) => Err(JsonError::at(*pos, "unexpected character")),
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, JsonError> {
    debug_assert_eq!(bytes[*pos], b'"');
    *pos += 1;
    let mut out = String::new();
    loop {
        let Some(&b) = bytes.get(*pos) else {
            return Err(JsonError::at(*pos, "unterminated string"));
        };
        match b {
            b'"' => {
                *pos += 1;
                return Ok(out);
            }
            b'\\' => {
                *pos += 1;
                let Some(&esc) = bytes.get(*pos) else {
                    return Err(JsonError::at(*pos, "unterminated escape"));
                };
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'u' => {
                        if bytes.len() - *pos < 4 {
                            return Err(JsonError::at(*pos, "truncated \\u escape"));
                        }
                        let hex = std::str::from_utf8(&bytes[*pos..*pos + 4])
                            .ok()
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or(JsonError::at(*pos, "invalid \\u escape"))?;
                        *pos += 4;
                        // Surrogate pairs are not needed for trace payloads;
                        // lone surrogates degrade to the replacement char.
                        out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                    }
                    _ => return Err(JsonError::at(*pos, "unknown escape")),
                }
            }
            _ => {
                // Consume one UTF-8 scalar (input is &str, so boundaries
                // are valid).
                let start = *pos;
                *pos += 1;
                while *pos < bytes.len() && bytes[*pos] & 0xC0 == 0x80 {
                    *pos += 1;
                }
                out.push_str(std::str::from_utf8(&bytes[start..*pos]).expect("input was &str"));
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, JsonError> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut is_float = false;
    while let Some(&b) = bytes.get(*pos) {
        match b {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                is_float = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).expect("input was &str");
    if is_float {
        text.parse::<f64>()
            .map(JsonValue::Float)
            .map_err(|_| JsonError::at(start, "invalid number"))
    } else {
        text.parse::<i128>()
            .map(JsonValue::Int)
            .map_err(|_| JsonError::at(start, "invalid integer"))
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, JsonError> {
    *pos += 1; // '['
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(JsonValue::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(JsonValue::Arr(items));
            }
            _ => return Err(JsonError::at(*pos, "expected ',' or ']'")),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, JsonError> {
    *pos += 1; // '{'
    let mut map = BTreeMap::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(JsonValue::Obj(map));
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err(JsonError::at(*pos, "expected object key"));
        }
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(JsonError::at(*pos, "expected ':'"));
        }
        *pos += 1;
        let value = parse_value(bytes, pos)?;
        map.insert(key, value);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(JsonValue::Obj(map));
            }
            _ => return Err(JsonError::at(*pos, "expected ',' or '}'")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_exact_u64() {
        let big = u64::MAX - 3;
        let v = JsonValue::Int(big as i128);
        let parsed = JsonValue::parse(&v.render()).unwrap();
        assert_eq!(parsed.as_u64(), Some(big));
    }

    #[test]
    fn parses_nested_document() {
        let doc =
            r#" {"type":"frame_sent","node":3,"ok":true,"tags":["a","b"],"lat":1.5,"none":null} "#;
        let v = JsonValue::parse(doc).unwrap();
        let obj = v.as_obj().unwrap();
        assert_eq!(obj["type"].as_str(), Some("frame_sent"));
        assert_eq!(obj["node"].as_u64(), Some(3));
        assert_eq!(obj["ok"], JsonValue::Bool(true));
        assert_eq!(obj["lat"], JsonValue::Float(1.5));
        assert_eq!(obj["none"], JsonValue::Null);
        assert_eq!(
            obj["tags"],
            JsonValue::Arr(vec![JsonValue::Str("a".into()), JsonValue::Str("b".into())])
        );
    }

    #[test]
    fn escapes_control_and_quote_characters() {
        let v = JsonValue::Str("a\"b\\c\nd\u{1}".into());
        let rendered = v.render();
        assert_eq!(rendered, "\"a\\\"b\\\\c\\nd\\u0001\"");
        assert_eq!(JsonValue::parse(&rendered).unwrap(), v);
    }

    #[test]
    fn rejects_garbage() {
        assert!(JsonValue::parse("{").is_err());
        assert!(JsonValue::parse("12 34").is_err());
        assert!(JsonValue::parse("{\"a\":}").is_err());
        assert!(JsonValue::parse("nul").is_err());
    }

    #[test]
    fn object_output_is_deterministic() {
        let doc = r#"{"b":1,"a":2}"#;
        let v = JsonValue::parse(doc).unwrap();
        assert_eq!(v.render(), r#"{"a":2,"b":1}"#);
    }
}
