//! The workspace's canonical monotone counter.
//!
//! `semantic_gossip::stats::Stat` and `simnet::Counter` grew up as identical
//! twins in separate crates; both are now re-exports of this type, so
//! cluster-wide aggregation can add gossip-layer and simulation-layer
//! counters without conversion.

use std::fmt;
use std::ops::AddAssign;

/// A monotonically increasing event counter.
///
/// # Example
///
/// ```
/// use obs::Counter;
/// let mut c = Counter::default();
/// c.incr();
/// c.add(4);
/// assert_eq!(c.get(), 5);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct Counter(u64);

impl Counter {
    /// A counter starting at `n`.
    pub fn new(n: u64) -> Self {
        Counter(n)
    }

    /// Increments by one.
    #[inline]
    pub fn incr(&mut self) {
        self.0 += 1;
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0
    }
}

impl AddAssign for Counter {
    fn add_assign(&mut self, rhs: Counter) {
        self.0 += rhs.0;
    }
}

impl From<u64> for Counter {
    fn from(n: u64) -> Self {
        Counter(n)
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::Counter;

    #[test]
    fn incr_add_get() {
        let mut c = Counter::default();
        c.incr();
        c.add(9);
        assert_eq!(c.get(), 10);
        assert_eq!(c.to_string(), "10");
    }

    #[test]
    fn add_assign_merges() {
        let mut a = Counter::new(3);
        a += Counter::new(4);
        assert_eq!(a.get(), 7);
    }
}
