//! Observer trait and the two concrete sinks.
//!
//! Instrumented components take an `O: Observer` type parameter (not a
//! `dyn` object) and guard every emission with `if O::ENABLED`. With the
//! default [`NoopObserver`] the constant is `false`, the branch folds away
//! at monomorphization, and no `Event` is ever constructed — instrumented
//! and uninstrumented nodes compile to the same hot path (the
//! `obs_overhead` benchmark in `crates/bench` checks this claim).

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::event::{Event, TimedEvent};

/// A sink for [`Event`]s.
///
/// Implementations decide what a timestamp means; components never read
/// clocks. Emission sites must be wrapped in `if O::ENABLED` so disabled
/// observers cost nothing — including the cost of building the event.
pub trait Observer {
    /// Whether events should be constructed at all. Emission sites guard
    /// on this constant; `false` makes them vanish at compile time.
    const ENABLED: bool = true;

    /// Consumes one event.
    fn record(&mut self, event: Event);
}

/// The zero-cost default: disabled at compile time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoopObserver;

impl Observer for NoopObserver {
    const ENABLED: bool = false;

    #[inline(always)]
    fn record(&mut self, _event: Event) {}
}

/// A bounded in-memory event buffer with an externally driven clock.
///
/// Sans-IO: the owner calls [`set_now`](RingObserver::set_now) before
/// handing control to instrumented components, so simulated runs stamp
/// events with simulated time. When full, the oldest events are discarded
/// (and counted), bounding memory on long runs.
#[derive(Debug, Clone, Default)]
pub struct RingObserver {
    events: VecDeque<TimedEvent>,
    capacity: usize,
    now: u64,
    discarded: u64,
}

impl RingObserver {
    /// A ring holding at most `capacity` events; capacity 0 records
    /// nothing (but still counts discards).
    pub fn with_capacity(capacity: usize) -> Self {
        RingObserver {
            events: VecDeque::with_capacity(capacity.min(4096)),
            capacity,
            now: 0,
            discarded: 0,
        }
    }

    /// Sets the timestamp applied to subsequently recorded events.
    pub fn set_now(&mut self, now_nanos: u64) {
        self.now = now_nanos;
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events discarded because the ring was full.
    pub fn discarded(&self) -> u64 {
        self.discarded
    }

    /// Iterates over buffered events, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &TimedEvent> {
        self.events.iter()
    }

    /// Removes and returns all buffered events, oldest first.
    pub fn drain(&mut self) -> Vec<TimedEvent> {
        self.events.drain(..).collect()
    }

    /// Serializes the buffered events as JSONL (one event per line).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for e in &self.events {
            out.push_str(&e.to_json());
            out.push('\n');
        }
        out
    }
}

impl Observer for RingObserver {
    fn record(&mut self, event: Event) {
        if self.capacity == 0 {
            self.discarded += 1;
            return;
        }
        if self.events.len() >= self.capacity {
            self.events.pop_front();
            self.discarded += 1;
        }
        self.events.push_back(TimedEvent {
            at: self.now,
            event,
        });
    }
}

/// Fans every event out to two observers.
///
/// Enabled whenever either side is; the event is cloned only when both
/// sides are enabled, so `Tee<SharedRing, NoopObserver>` costs the same
/// as the bare ring. Live runtimes use this to feed one global trace ring
/// and a per-node sink (e.g. a local ring drained into a
/// [`HealthTracker`](crate::health::HealthTracker)) from a single
/// instrumentation point.
#[derive(Debug, Clone, Default)]
pub struct Tee<A, B> {
    /// First sink.
    pub a: A,
    /// Second sink.
    pub b: B,
}

impl<A, B> Tee<A, B> {
    /// Combines two observers into one.
    pub fn new(a: A, b: B) -> Self {
        Tee { a, b }
    }
}

impl<A: Observer, B: Observer> Observer for Tee<A, B> {
    const ENABLED: bool = A::ENABLED || B::ENABLED;

    fn record(&mut self, event: Event) {
        if A::ENABLED && B::ENABLED {
            self.a.record(event.clone());
            self.b.record(event);
        } else if A::ENABLED {
            self.a.record(event);
        } else if B::ENABLED {
            self.b.record(event);
        }
    }
}

/// A cloneable, thread-safe ring that stamps events with monotonic elapsed
/// nanoseconds — the observer for live (threaded) transport runs, where no
/// single owner can drive `set_now`.
#[derive(Debug, Clone)]
pub struct SharedRing {
    inner: Arc<Mutex<RingObserver>>,
    epoch: Instant,
}

impl SharedRing {
    /// A shared ring holding at most `capacity` events.
    pub fn new(capacity: usize) -> Self {
        SharedRing {
            inner: Arc::new(Mutex::new(RingObserver::with_capacity(capacity))),
            epoch: Instant::now(),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, RingObserver> {
        self.inner
            .lock()
            .unwrap_or_else(|poison| poison.into_inner())
    }

    /// Copies out the buffered events, oldest first.
    pub fn snapshot(&self) -> Vec<TimedEvent> {
        self.lock().iter().cloned().collect()
    }

    /// Removes and returns all buffered events, oldest first.
    pub fn drain(&self) -> Vec<TimedEvent> {
        self.lock().drain()
    }

    /// Events discarded because the ring was full.
    pub fn discarded(&self) -> u64 {
        self.lock().discarded()
    }

    /// Serializes the buffered events as JSONL.
    pub fn to_jsonl(&self) -> String {
        self.lock().to_jsonl()
    }

    /// Records on a shared handle (usable behind `&self`, unlike the
    /// `Observer` entry point).
    pub fn record_shared(&self, event: Event) {
        let at = self.epoch.elapsed().as_nanos() as u64;
        let mut ring = self.lock();
        ring.set_now(at);
        ring.record(event);
    }
}

impl Observer for SharedRing {
    fn record(&mut self, event: Event) {
        self.record_shared(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mark(node: u32, label: &str) -> Event {
        Event::Mark {
            node,
            label: label.to_string(),
        }
    }

    #[test]
    fn noop_is_compile_time_disabled() {
        const { assert!(!NoopObserver::ENABLED) };
        const { assert!(RingObserver::ENABLED) };
    }

    #[test]
    fn tee_enablement_follows_either_side() {
        const { assert!(!<Tee<NoopObserver, NoopObserver>>::ENABLED) };
        const { assert!(<Tee<RingObserver, NoopObserver>>::ENABLED) };
        const { assert!(<Tee<NoopObserver, RingObserver>>::ENABLED) };
        const { assert!(<Tee<RingObserver, RingObserver>>::ENABLED) };
    }

    #[test]
    fn tee_records_into_both_sides() {
        let mut tee = Tee::new(
            RingObserver::with_capacity(4),
            RingObserver::with_capacity(4),
        );
        tee.a.set_now(1);
        tee.b.set_now(2);
        tee.record(mark(0, "x"));
        assert_eq!(tee.a.len(), 1);
        assert_eq!(tee.b.len(), 1);
        assert_eq!(tee.a.drain()[0].at, 1);
        assert_eq!(tee.b.drain()[0].at, 2);
    }

    #[test]
    fn tee_with_one_disabled_side_still_records() {
        let mut tee = Tee::new(NoopObserver, RingObserver::with_capacity(4));
        tee.record(mark(3, "y"));
        assert_eq!(tee.b.len(), 1);
    }

    #[test]
    fn ring_keeps_newest_and_counts_discards() {
        let mut ring = RingObserver::with_capacity(2);
        ring.set_now(1);
        ring.record(mark(0, "a"));
        ring.set_now(2);
        ring.record(mark(0, "b"));
        ring.set_now(3);
        ring.record(mark(0, "c"));
        assert_eq!(ring.len(), 2);
        assert_eq!(ring.discarded(), 1);
        let drained = ring.drain();
        assert_eq!(drained[0].at, 2);
        assert_eq!(drained[1].at, 3);
        assert!(ring.is_empty());
    }

    #[test]
    fn zero_capacity_ring_records_nothing() {
        let mut ring = RingObserver::with_capacity(0);
        ring.record(mark(1, "x"));
        assert!(ring.is_empty());
        assert_eq!(ring.discarded(), 1);
    }

    #[test]
    fn jsonl_round_trips() {
        let mut ring = RingObserver::with_capacity(8);
        ring.set_now(5);
        ring.record(mark(2, "hello"));
        ring.record(Event::FrameSent {
            node: 2,
            peer: 3,
            bytes: 128,
        });
        let jsonl = ring.to_jsonl();
        let lines: Vec<_> = jsonl.lines().collect();
        assert_eq!(lines.len(), 2);
        for (line, original) in lines.iter().zip(ring.iter()) {
            assert_eq!(&TimedEvent::from_json(line).unwrap(), original);
        }
    }

    #[test]
    fn shared_ring_is_cloneable_and_threadsafe() {
        let ring = SharedRing::new(64);
        let mut handles = Vec::new();
        for t in 0..4u32 {
            let r = ring.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..8 {
                    r.record_shared(mark(t, &format!("{i}")));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(ring.snapshot().len(), 32);
    }
}
