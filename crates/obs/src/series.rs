//! Fixed-capacity windowed time-series for live rate metrics.
//!
//! A `/metrics` endpoint that exposes raw monotone counters forces every
//! consumer to differentiate them; a dashboardless `curl` or the
//! `tracetool watch` table wants *rates*. [`Series`] is the bounded
//! substrate: a ring of `(t, value)` samples with a time window, answering
//! windowed counter-rate, mean, max — and quantiles through a cumulative
//! [`LogHistogram`] fed alongside the ring.
//!
//! Like everything in `obs`, a series never reads a clock: callers stamp
//! samples with whatever nanosecond timeline they run on (simulated time,
//! monotonic wall time). Samples must be pushed in non-decreasing time
//! order; a sample older than the newest is clamped forward rather than
//! reordered (live runtimes occasionally race on coarse clocks).
//!
//! Memory is bounded twice over: the ring holds at most `capacity` samples
//! *and* discards samples older than `window_ns` relative to the newest;
//! the histogram is the fixed ~7.6 KiB [`LogHistogram`]. Both bounds are
//! enforced on every push, so a series can run for days.

use std::collections::VecDeque;

use crate::hist::LogHistogram;

/// A bounded ring of `(t_ns, value)` samples with windowed statistics.
#[derive(Debug, Clone)]
pub struct Series {
    samples: VecDeque<(u64, u64)>,
    capacity: usize,
    window_ns: u64,
    /// Running sum of the in-window sample values (kept incrementally so
    /// `mean()` is O(1); eviction subtracts what it removes).
    window_sum: u128,
    /// Cumulative distribution of every value ever pushed (not windowed —
    /// quantiles summarize the series' lifetime, bounded by bucketing).
    hist: LogHistogram,
}

impl Series {
    /// A series keeping at most `capacity` samples within `window_ns` of
    /// the newest sample. `capacity` is clamped to at least 2 (a rate
    /// needs two points).
    pub fn new(capacity: usize, window_ns: u64) -> Self {
        Series {
            samples: VecDeque::new(),
            capacity: capacity.max(2),
            window_ns,
            window_sum: 0,
            hist: LogHistogram::new(),
        }
    }

    /// Pushes a sample. `t_ns` earlier than the newest sample is clamped
    /// to the newest (monotone timeline), then both bounds are enforced.
    pub fn push(&mut self, t_ns: u64, value: u64) {
        let t = match self.samples.back() {
            Some(&(last, _)) => t_ns.max(last),
            None => t_ns,
        };
        self.samples.push_back((t, value));
        self.window_sum += value as u128;
        self.hist.record(value);
        self.evict(t);
    }

    fn evict(&mut self, newest: u64) {
        let horizon = newest.saturating_sub(self.window_ns);
        while self.samples.len() > self.capacity
            || self.samples.front().is_some_and(|&(t, _)| t < horizon)
        {
            let (_, v) = self.samples.pop_front().unwrap();
            self.window_sum -= v as u128;
        }
    }

    /// Number of samples currently in the window.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the window holds no samples.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The newest sample, if any.
    pub fn last(&self) -> Option<(u64, u64)> {
        self.samples.back().copied()
    }

    /// Counter rate over the window: `(newest value − oldest value)` per
    /// second, for series fed from a monotone counter. `None` with fewer
    /// than two samples or zero elapsed time; a counter reset (newest <
    /// oldest, e.g. process restart) reads as `Some(0.0)`.
    pub fn delta_rate_per_sec(&self) -> Option<f64> {
        let &(t0, v0) = self.samples.front()?;
        let &(t1, v1) = self.samples.back()?;
        if t1 == t0 {
            return None;
        }
        let dv = v1.saturating_sub(v0) as f64;
        Some(dv / ((t1 - t0) as f64 / 1e9))
    }

    /// Mean of the in-window sample values, for gauge-style series.
    pub fn mean(&self) -> Option<f64> {
        if self.samples.is_empty() {
            None
        } else {
            Some(self.window_sum as f64 / self.samples.len() as f64)
        }
    }

    /// Maximum in-window sample value, for gauge-style series.
    pub fn max(&self) -> Option<u64> {
        self.samples.iter().map(|&(_, v)| v).max()
    }

    /// Lifetime quantile of pushed values from the cumulative histogram
    /// (≤ one log-bucket of error; see [`LogHistogram::quantile`]).
    pub fn quantile(&self, q: f64) -> Option<u64> {
        self.hist.quantile(q)
    }

    /// The cumulative histogram (e.g. to merge into a Prometheus family).
    pub fn histogram(&self) -> &LogHistogram {
        &self.hist
    }

    /// Merges another series: samples interleave by time (clamped to this
    /// series' monotone order), histograms add. Intended for combining
    /// per-shard series sampled on the same timeline.
    pub fn merge(&mut self, other: &Series) {
        let mut merged: Vec<(u64, u64)> = self
            .samples
            .iter()
            .chain(other.samples.iter())
            .copied()
            .collect();
        merged.sort_by_key(|&(t, _)| t);
        self.samples.clear();
        self.window_sum = 0;
        for (t, v) in merged {
            self.samples.push_back((t, v));
            self.window_sum += v as u128;
        }
        if let Some(&(newest, _)) = self.samples.back() {
            self.evict(newest);
        }
        self.hist.merge(&other.hist);
    }

    /// In-window samples, oldest first (tests and debugging).
    pub fn samples(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.samples.iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rate_needs_two_samples_and_elapsed_time() {
        let mut s = Series::new(16, u64::MAX);
        assert_eq!(s.delta_rate_per_sec(), None);
        s.push(1_000_000_000, 100);
        assert_eq!(s.delta_rate_per_sec(), None);
        s.push(1_000_000_000, 150); // same instant
        assert_eq!(s.delta_rate_per_sec(), None);
        s.push(2_000_000_000, 300);
        // 200 over 1 s.
        assert!((s.delta_rate_per_sec().unwrap() - 200.0).abs() < 1e-9);
    }

    #[test]
    fn counter_reset_reads_as_zero_rate() {
        let mut s = Series::new(16, u64::MAX);
        s.push(0, 1_000);
        s.push(1_000_000_000, 10);
        assert_eq!(s.delta_rate_per_sec(), Some(0.0));
    }

    #[test]
    fn capacity_bound_evicts_oldest() {
        let mut s = Series::new(4, u64::MAX);
        for i in 0..10u64 {
            s.push(i * 1_000, i);
        }
        assert_eq!(s.len(), 4);
        let kept: Vec<u64> = s.samples().map(|(_, v)| v).collect();
        assert_eq!(kept, vec![6, 7, 8, 9]);
    }

    #[test]
    fn window_bound_evicts_stale() {
        let mut s = Series::new(1024, 1_000);
        s.push(0, 1);
        s.push(500, 2);
        s.push(2_000, 3); // horizon 1_000: evicts t=0 and t=500
        assert_eq!(s.len(), 1);
        assert_eq!(s.last(), Some((2_000, 3)));
    }

    #[test]
    fn mean_and_max_track_the_window() {
        let mut s = Series::new(3, u64::MAX);
        s.push(0, 10);
        s.push(1, 20);
        s.push(2, 30);
        assert_eq!(s.mean(), Some(20.0));
        assert_eq!(s.max(), Some(30));
        s.push(3, 2); // evicts the 10
        assert!((s.mean().unwrap() - (20 + 30 + 2) as f64 / 3.0).abs() < 1e-9);
        assert_eq!(s.max(), Some(30));
    }

    #[test]
    fn non_monotone_timestamps_are_clamped() {
        let mut s = Series::new(16, u64::MAX);
        s.push(100, 1);
        s.push(50, 2); // clamped to t=100
        let ts: Vec<u64> = s.samples().map(|(t, _)| t).collect();
        assert_eq!(ts, vec![100, 100]);
    }

    #[test]
    fn quantiles_cover_lifetime_not_window() {
        let mut s = Series::new(2, u64::MAX);
        for v in [100u64, 200, 300, 400] {
            s.push(v, v);
        }
        assert_eq!(s.len(), 2); // ring forgot 100 and 200 ...
        let q99 = s.quantile(0.99).unwrap();
        assert!(q99 >= 400, "lifetime q99 {q99} must see the 400");
        let q01 = s.quantile(0.01).unwrap();
        assert!(q01 <= 200, "lifetime q01 {q01} must still see the 100");
    }

    #[test]
    fn merge_interleaves_and_rebounds() {
        let mut a = Series::new(4, u64::MAX);
        a.push(0, 1);
        a.push(100, 2);
        let mut b = Series::new(4, u64::MAX);
        b.push(50, 10);
        b.push(150, 20);
        a.merge(&b);
        let ts: Vec<u64> = a.samples().map(|(t, _)| t).collect();
        assert_eq!(ts, vec![0, 50, 100, 150]);
        assert_eq!(a.histogram().count(), 4);
        // window_sum stayed consistent with the surviving samples.
        assert!((a.mean().unwrap() - (1 + 10 + 2 + 20) as f64 / 4.0).abs() < 1e-9);
    }

    /// Deterministic LCG, same constants as Knuth's MMIX — the crate is
    /// dependency-free, so pseudo-property tests roll their own entropy.
    struct Lcg(u64);

    impl Lcg {
        fn next(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0 >> 33
        }
    }

    /// A naive reference model: a plain Vec with both bounds re-applied
    /// from scratch after every push.
    fn model_evict(model: &mut Vec<(u64, u64)>, capacity: usize, window_ns: u64) {
        let newest = model.last().map_or(0, |&(t, _)| t);
        let horizon = newest.saturating_sub(window_ns);
        while model.len() > capacity || model.first().is_some_and(|&(t, _)| t < horizon) {
            model.remove(0);
        }
    }

    #[test]
    fn windowed_stats_match_exact_recomputation() {
        let mut rng = Lcg(0xB0A710AD);
        for trial in 0..8 {
            let capacity = 2 + (rng.next() % 12) as usize;
            let window_ns = 1 + rng.next() % 5_000;
            let mut s = Series::new(capacity, window_ns);
            let mut model: Vec<(u64, u64)> = Vec::new();
            let mut t = 0u64;
            for _ in 0..300 {
                // Occasionally jump far ahead (forces window eviction) or
                // step back (exercises the monotone clamp).
                t = match rng.next() % 10 {
                    0 => t + window_ns + 1 + rng.next() % 100,
                    1 => t.saturating_sub(rng.next() % 50),
                    _ => t + rng.next() % 400,
                };
                let v = rng.next() % 10_000;
                s.push(t, v);
                let clamped = model.last().map_or(t, |&(last, _)| t.max(last));
                model.push((clamped, v));
                model_evict(&mut model, capacity, window_ns);

                let got: Vec<(u64, u64)> = s.samples().collect();
                assert_eq!(got, model, "trial {trial}: window contents diverged");
                let exact_mean =
                    model.iter().map(|&(_, v)| v as f64).sum::<f64>() / model.len() as f64;
                assert!(
                    (s.mean().unwrap() - exact_mean).abs() < 1e-6,
                    "trial {trial}: incremental mean drifted from exact"
                );
                assert_eq!(s.max(), model.iter().map(|&(_, v)| v).max());
                let (t0, v0) = model[0];
                let (t1, v1) = *model.last().unwrap();
                let exact_rate =
                    (t1 > t0).then(|| v1.saturating_sub(v0) as f64 / ((t1 - t0) as f64 / 1e9));
                match (s.delta_rate_per_sec(), exact_rate) {
                    (Some(a), Some(b)) => assert!((a - b).abs() < 1e-6),
                    (a, b) => assert_eq!(a.is_some(), b.is_some(), "trial {trial}"),
                }
            }
        }
    }

    #[test]
    fn merge_invariants_hold_under_random_inputs() {
        let mut rng = Lcg(0x5EED5EED);
        for trial in 0..16 {
            let capacity = 2 + (rng.next() % 8) as usize;
            let window_ns = 100 + rng.next() % 2_000;
            let mut a = Series::new(capacity, window_ns);
            let mut b = Series::new(capacity, window_ns);
            for series in [&mut a, &mut b] {
                let mut t = rng.next() % 500;
                for _ in 0..(1 + rng.next() % 40) {
                    series.push(t, rng.next() % 1_000);
                    t += rng.next() % 300;
                }
            }
            let count_before = a.histogram().count() + b.histogram().count();
            a.merge(&b);
            // Both bounds still hold after the merge...
            assert!(a.len() <= capacity, "trial {trial}: capacity violated");
            let ts: Vec<u64> = a.samples().map(|(t, _)| t).collect();
            assert!(
                ts.windows(2).all(|w| w[0] <= w[1]),
                "trial {trial}: unsorted"
            );
            let newest = *ts.last().unwrap();
            assert!(
                ts.iter().all(|&t| t >= newest.saturating_sub(window_ns)),
                "trial {trial}: stale sample survived merge"
            );
            // ...the incremental sum matches the surviving samples...
            let exact_mean = a.samples().map(|(_, v)| v as f64).sum::<f64>() / a.len() as f64;
            assert!(
                (a.mean().unwrap() - exact_mean).abs() < 1e-6,
                "trial {trial}: window_sum out of sync after merge"
            );
            // ...and the lifetime histogram saw every push from both sides.
            assert_eq!(a.histogram().count(), count_before, "trial {trial}");
        }
    }
}
