//! Always-on bounded flight recorder: the last N events, dumpable with a
//! reason when something goes wrong.
//!
//! Full traces are an opt-in debugging tool — they are unbounded and cost
//! serialization. A [`FlightRecorder`] is the always-on counterpart: a
//! small [`RingObserver`]-backed ring of the most recent events that
//! costs nothing but ring pushes while things go well, and produces a
//! self-describing JSONL dump the moment a stall is detected, a safety
//! audit fails, or an operator asks for one. The dump begins with a
//! `mark` event naming the trigger, so the file explains itself and still
//! parses as an ordinary trace (`tracetool` accepts it unchanged).

use std::io;
use std::path::Path;

use crate::event::{Event, TimedEvent};
use crate::observer::{Observer, RingObserver};

/// A bounded ring of recent [`TimedEvent`]s with reasoned JSONL dumps.
///
/// # Example
///
/// ```
/// use obs::flight::FlightRecorder;
/// use obs::{Event, TimedEvent};
///
/// let mut flight = FlightRecorder::with_capacity(128);
/// flight.record(TimedEvent {
///     at: 42,
///     event: Event::Mark { node: 0, label: "hello".into() },
/// });
/// let dump = flight.dump("example trigger");
/// assert!(dump.lines().count() == 2); // trigger mark + one event
/// ```
#[derive(Debug, Clone, Default)]
pub struct FlightRecorder {
    ring: RingObserver,
}

impl FlightRecorder {
    /// A recorder keeping the most recent `capacity` events.
    pub fn with_capacity(capacity: usize) -> Self {
        FlightRecorder {
            ring: RingObserver::with_capacity(capacity),
        }
    }

    /// Records one already-timestamped event.
    pub fn record(&mut self, e: TimedEvent) {
        self.ring.set_now(e.at);
        self.ring.record(e.event);
    }

    /// Records a batch of already-timestamped events.
    pub fn extend(&mut self, events: impl IntoIterator<Item = TimedEvent>) {
        for e in events {
            self.record(e);
        }
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// Whether the recorder holds no events.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Events that fell off the back of the ring.
    pub fn discarded(&self) -> u64 {
        self.ring.discarded()
    }

    /// Copies out the buffered events, oldest first.
    pub fn snapshot(&self) -> Vec<TimedEvent> {
        self.ring.iter().cloned().collect()
    }

    /// Serializes the buffer as a self-describing JSONL dump: a leading
    /// `mark` event records the trigger `reason` (and how many older
    /// events the ring had already discarded), followed by the buffered
    /// events oldest-first. The result is a valid trace file.
    pub fn dump(&self, reason: &str) -> String {
        let at = self.ring.iter().next().map_or(0, |e| e.at);
        let header = TimedEvent {
            at,
            event: Event::Mark {
                node: 0,
                label: format!(
                    "flight dump: {reason} ({} events, {} older discarded)",
                    self.ring.len(),
                    self.ring.discarded()
                ),
            },
        };
        let mut out = header.to_json();
        out.push('\n');
        out.push_str(&self.ring.to_jsonl());
        out
    }

    /// Writes [`dump`](Self::dump) to `path`, returning the number of
    /// events written (excluding the trigger mark).
    ///
    /// # Errors
    ///
    /// Propagates the underlying filesystem error.
    pub fn write_dump(&self, path: impl AsRef<Path>, reason: &str) -> io::Result<usize> {
        std::fs::write(path, self.dump(reason))?;
        Ok(self.ring.len())
    }
}

/// Recording through the `Observer` entry point stamps events with the
/// last timestamp seen via [`FlightRecorder::record`] — drive the clock
/// by recording [`TimedEvent`]s, or wrap the recorder's ring directly.
impl Observer for FlightRecorder {
    fn record(&mut self, event: Event) {
        self.ring.record(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mark(at: u64, label: &str) -> TimedEvent {
        TimedEvent {
            at,
            event: Event::Mark {
                node: 1,
                label: label.to_string(),
            },
        }
    }

    #[test]
    fn keeps_only_the_most_recent_events() {
        let mut flight = FlightRecorder::with_capacity(3);
        for i in 0..10u64 {
            flight.record(mark(i, &format!("e{i}")));
        }
        assert_eq!(flight.len(), 3);
        assert_eq!(flight.discarded(), 7);
        let events = flight.snapshot();
        assert_eq!(events.first().unwrap().at, 7);
        assert_eq!(events.last().unwrap().at, 9);
    }

    #[test]
    fn dump_is_a_parseable_trace_with_a_reason_header() {
        let mut flight = FlightRecorder::with_capacity(8);
        flight.extend([mark(5, "a"), mark(6, "b")]);
        let dump = flight.dump("unit-test trigger");
        let lines: Vec<&str> = dump.lines().collect();
        assert_eq!(lines.len(), 3);
        let header = TimedEvent::from_json(lines[0]).unwrap();
        match header.event {
            Event::Mark { label, .. } => {
                assert!(label.contains("unit-test trigger"), "{label}");
                assert!(label.contains("2 events"), "{label}");
            }
            other => panic!("expected mark header, got {other:?}"),
        }
        for line in &lines[1..] {
            TimedEvent::from_json(line).unwrap();
        }
    }

    #[test]
    fn write_dump_creates_the_file() {
        let mut flight = FlightRecorder::with_capacity(4);
        flight.record(mark(1, "x"));
        let path = std::env::temp_dir().join("obs-flight-test-dump.jsonl");
        let written = flight.write_dump(&path, "test").unwrap();
        assert_eq!(written, 1);
        let content = std::fs::read_to_string(&path).unwrap();
        assert_eq!(content.lines().count(), 2);
        let _ = std::fs::remove_file(&path);
    }
}
