//! Mergeable, log-bucketed, bounded-memory latency histogram.
//!
//! [`LogHistogram`] trades exactness for a hard memory bound: values are
//! counted in log-linear buckets (HdrHistogram-style), 16 sub-buckets per
//! power of two, so any recorded `u64` lands in one of 976 fixed buckets
//! and quantile estimates carry at most one bucket (≤ 6.25 %) of relative
//! error. Histograms from different nodes, shards, or runs merge by
//! bucket-wise addition, which makes the type safe to keep on hot paths
//! where the exact sample-keeping `simnet::Histogram` would grow without
//! bound.
//!
//! The unit of recorded values is up to the caller; the workspace records
//! nanoseconds and scales to seconds at exposition time.

/// Bits of linear resolution per power of two (16 sub-buckets).
const SUB_BITS: u32 = 4;
/// Sub-buckets per octave.
const SUB: u64 = 1 << SUB_BITS;
/// Total bucket count for the full `u64` range: `SUB` exact unit buckets
/// plus `SUB` buckets for each of the 60 remaining octave shifts.
const BUCKETS: usize = (60 * SUB) as usize + SUB as usize;

/// A fixed-size log-linear histogram over `u64` values.
///
/// # Example
///
/// ```
/// use obs::hist::LogHistogram;
/// let mut h = LogHistogram::new();
/// for v in [10, 20, 30, 40, 1000] {
///     h.record(v);
/// }
/// assert_eq!(h.count(), 5);
/// let p50 = h.quantile(0.5).unwrap();
/// assert!((20..=31).contains(&p50)); // within one bucket of the exact 30
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogHistogram {
    counts: Vec<u64>,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LogHistogram {
    /// An empty histogram. Allocates the full bucket array (~7.6 KiB).
    pub fn new() -> Self {
        Self {
            counts: vec![0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one value.
    pub fn record(&mut self, value: u64) {
        self.record_n(value, 1);
    }

    /// Records `n` occurrences of `value`.
    pub fn record_n(&mut self, value: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.counts[bucket_index(value)] += n;
        self.count += n;
        self.sum += value as u128 * n as u128;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Total number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Exact sum of all recorded values.
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Smallest recorded value, if any.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest recorded value, if any.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Exact mean of all recorded values (the sum is kept exactly).
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    /// Nearest-rank quantile estimate for `q` in `[0, 1]`.
    ///
    /// Returns the upper bound of the bucket holding the rank-`⌈q·count⌉`
    /// value, clamped to the observed `[min, max]` range — so the estimate
    /// is always within the true value's bucket (≤ 6.25 % relative error).
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(bucket_upper(i).clamp(self.min, self.max));
            }
        }
        Some(self.max)
    }

    /// Adds every bucket of `other` into `self`. Merging is associative
    /// and commutative, so per-shard histograms can be combined in any
    /// order.
    pub fn merge(&mut self, other: &LogHistogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Non-empty buckets as `(upper_bound, count)` pairs, in increasing
    /// value order — the raw material for Prometheus `_bucket` lines.
    pub fn buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (bucket_upper(i), c))
    }
}

/// The bucket a value falls into.
fn bucket_index(value: u64) -> usize {
    if value < SUB {
        return value as usize;
    }
    let msb = 63 - value.leading_zeros();
    let shift = msb - SUB_BITS;
    let top = value >> shift; // in [SUB, 2*SUB)
    (shift as u64 * SUB + top) as usize
}

/// The largest value that maps to bucket `index` (inclusive).
fn bucket_upper(index: usize) -> u64 {
    let index = index as u64;
    if index < SUB {
        return index;
    }
    let shift = index / SUB - 1;
    // `top` is in [SUB, 2*SUB). The topmost bucket's bound is u64::MAX:
    // (32 << 59) wraps to 0, and wrapping_sub turns it into the intended
    // all-ones value.
    let top = index - shift * SUB;
    ((top + 1) << shift).wrapping_sub(1)
}

/// The smallest value that maps to bucket `index`.
fn bucket_lower(index: usize) -> u64 {
    let index = index as u64;
    if index < SUB {
        return index;
    }
    let shift = index / SUB - 1;
    let top = index - shift * SUB;
    top << shift
}

/// The inclusive `[lower, upper]` value range of the bucket holding
/// `value` — the error bound a [`LogHistogram::quantile`] estimate is
/// guaranteed to stay within.
pub fn bucket_bounds(value: u64) -> (u64, u64) {
    let i = bucket_index(value);
    (bucket_lower(i), bucket_upper(i))
}

/// Exact nearest-rank percentile over a **sorted** slice: the smallest
/// element such that at least `p` percent of the samples are ≤ it.
///
/// This is the single definition of "percentile" in the workspace; the
/// exact sample-keeping `simnet::Histogram` delegates here, and the
/// [`LogHistogram::quantile`] accuracy tests compare against it.
pub fn nearest_rank(sorted: &[u64], p: f64) -> Option<u64> {
    if sorted.is_empty() {
        return None;
    }
    let p = p.clamp(0.0, 100.0);
    let rank = ((p / 100.0 * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    Some(sorted[rank - 1])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_mapping_is_contiguous_and_ordered() {
        // Every bucket's range starts right after the previous one ends.
        let mut prev_upper = None;
        for i in 0..BUCKETS {
            let (lo, hi) = (bucket_lower(i), bucket_upper(i));
            assert!(lo <= hi, "bucket {i}: {lo} > {hi}");
            if let Some(p) = prev_upper {
                assert_eq!(lo, p + 1u64, "gap/overlap before bucket {i}");
            }
            prev_upper = Some(hi);
        }
        assert_eq!(prev_upper, Some(u64::MAX));
        // Round-trip: boundary values map back to their bucket.
        for v in [0, 1, 15, 16, 17, 31, 32, 1000, u64::MAX / 2, u64::MAX] {
            let i = bucket_index(v);
            assert!((bucket_lower(i)..=bucket_upper(i)).contains(&v));
        }
    }

    #[test]
    fn small_values_are_exact() {
        let mut h = LogHistogram::new();
        for v in 0..16 {
            h.record(v);
        }
        for v in 0..16u64 {
            let q = (v + 1) as f64 / 16.0;
            assert_eq!(h.quantile(q), Some(v));
        }
    }

    #[test]
    fn quantile_stays_within_one_bucket() {
        let mut h = LogHistogram::new();
        let mut exact: Vec<u64> = (0..1000).map(|i| i * i + 7).collect();
        for &v in &exact {
            h.record(v);
        }
        exact.sort_unstable();
        for p in [0.0, 10.0, 50.0, 90.0, 99.0, 99.9, 100.0] {
            let truth = nearest_rank(&exact, p).unwrap();
            let est = h.quantile(p / 100.0).unwrap();
            let (lo, hi) = bucket_bounds(truth);
            assert!(
                (lo..=hi).contains(&est),
                "p{p}: estimate {est} outside bucket [{lo}, {hi}] of exact {truth}"
            );
        }
    }

    #[test]
    fn merge_equals_recording_everything_in_one() {
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        let mut all = LogHistogram::new();
        for v in [3u64, 500, 12_000, 9] {
            a.record(v);
            all.record(v);
        }
        for v in [1u64, 70_000, 70_001] {
            b.record(v);
            all.record(v);
        }
        a.merge(&b);
        assert_eq!(a, all);
        assert_eq!(a.count(), 7);
        assert_eq!(a.min(), Some(1));
        assert_eq!(a.max(), Some(70_001));
    }

    #[test]
    fn mean_and_sum_are_exact() {
        let mut h = LogHistogram::new();
        h.record_n(10, 3);
        h.record(70);
        assert_eq!(h.sum(), 100);
        assert_eq!(h.mean(), Some(25.0));
    }

    #[test]
    fn buckets_iterate_in_order_and_cover_count() {
        let mut h = LogHistogram::new();
        for v in [5u64, 5, 100, 3_000_000] {
            h.record(v);
        }
        let buckets: Vec<_> = h.buckets().collect();
        assert!(buckets.windows(2).all(|w| w[0].0 < w[1].0));
        assert_eq!(buckets.iter().map(|(_, c)| c).sum::<u64>(), h.count());
        assert_eq!(buckets[0], (5, 2));
    }

    #[test]
    fn empty_histogram_reports_nothing() {
        let h = LogHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.mean(), None);
        assert_eq!(h.buckets().count(), 0);
    }

    #[test]
    fn nearest_rank_matches_definition() {
        let sorted = [10u64, 20, 30, 40];
        assert_eq!(nearest_rank(&sorted, 0.0), Some(10));
        assert_eq!(nearest_rank(&sorted, 25.0), Some(10));
        assert_eq!(nearest_rank(&sorted, 50.0), Some(20));
        assert_eq!(nearest_rank(&sorted, 75.0), Some(30));
        assert_eq!(nearest_rank(&sorted, 100.0), Some(40));
        assert_eq!(nearest_rank(&[], 50.0), None);
    }
}
