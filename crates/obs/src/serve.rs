//! Live metrics: shared gauges/histograms and a dependency-free HTTP
//! `/metrics` scrape endpoint.
//!
//! A [`Registry`] holds metric families whose values are updated from the
//! hot paths through cheap handles — [`SharedGauge`] is an atomic store,
//! [`SharedHistogram`] a mutex around a bounded
//! [`LogHistogram`](crate::hist::LogHistogram) — and rendered on demand
//! into Prometheus text. [`MetricsServer`] binds a `std::net` listener and
//! answers `GET /metrics` with the registry's current state, so a live run
//! can be scraped mid-flight with nothing but `curl` (or a real
//! Prometheus). No HTTP library is involved: the request parsing is the
//! minimal slice the scrape protocol needs.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use crate::hist::LogHistogram;
use crate::prom::{Exposition, MetricKind};

/// A gauge that can be set from any thread and read by the scraper.
///
/// Cloning shares the underlying value.
#[derive(Debug, Clone, Default)]
pub struct SharedGauge {
    value: Arc<AtomicU64>,
}

impl SharedGauge {
    /// A gauge starting at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Stores a new value.
    pub fn set(&self, v: u64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Adds to the current value.
    pub fn add(&self, v: u64) {
        self.value.fetch_add(v, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A histogram that can be recorded into from any thread.
///
/// Cloning shares the underlying buckets.
#[derive(Debug, Clone, Default)]
pub struct SharedHistogram {
    inner: Arc<Mutex<LogHistogram>>,
}

impl SharedHistogram {
    /// An empty shared histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one value (typically nanoseconds or bytes).
    pub fn record(&self, value: u64) {
        self.inner.lock().unwrap().record(value);
    }

    /// Merges a locally-accumulated histogram in one lock acquisition.
    pub fn merge(&self, other: &LogHistogram) {
        self.inner.lock().unwrap().merge(other);
    }

    /// A copy of the current buckets.
    pub fn snapshot(&self) -> LogHistogram {
        self.inner.lock().unwrap().clone()
    }
}

enum Metric {
    Gauge {
        labels: Vec<(String, String)>,
        gauge: SharedGauge,
    },
    Histogram {
        labels: Vec<(String, String)>,
        hist: SharedHistogram,
        scale: f64,
    },
}

struct Family {
    name: String,
    help: String,
    kind: MetricKind,
    metrics: Vec<Metric>,
}

#[derive(Default)]
struct RegistryInner {
    families: Vec<Family>,
    extra: String,
}

impl RegistryInner {
    fn family(&mut self, name: &str, help: &str, kind: MetricKind) -> &mut Family {
        if let Some(i) = self.families.iter().position(|f| f.name == name) {
            return &mut self.families[i];
        }
        self.families.push(Family {
            name: name.to_string(),
            help: help.to_string(),
            kind,
            metrics: Vec::new(),
        });
        self.families.last_mut().unwrap()
    }
}

fn own_labels(labels: &[(&str, &str)]) -> Vec<(String, String)> {
    labels
        .iter()
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect()
}

/// A set of live metric families, rendered to Prometheus text on demand.
///
/// Cloning shares the registry; registration returns cheap handles meant
/// to be moved into worker threads.
///
/// # Example
///
/// ```
/// use obs::serve::Registry;
/// let registry = Registry::new();
/// let depth = registry.gauge("send_queue_depth", "Queued messages.", &[("peer", "3")]);
/// depth.set(17);
/// assert!(registry.render().contains("send_queue_depth{peer=\"3\"} 17"));
/// ```
#[derive(Clone, Default)]
pub struct Registry {
    inner: Arc<Mutex<RegistryInner>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers one gauge sample under `name` with the given label set
    /// and returns its update handle. Repeated calls with the same name
    /// extend the family (the first call's help text wins).
    pub fn gauge(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> SharedGauge {
        let gauge = SharedGauge::new();
        let mut inner = self.inner.lock().unwrap();
        inner
            .family(name, help, MetricKind::Gauge)
            .metrics
            .push(Metric::Gauge {
                labels: own_labels(labels),
                gauge: gauge.clone(),
            });
        gauge
    }

    /// Registers one histogram under `name` and returns its recording
    /// handle. Recorded values are divided by `scale` at scrape time —
    /// record nanoseconds with `scale = 1e9` for a `_seconds` family,
    /// bytes with `scale = 1.0`.
    pub fn histogram(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        scale: f64,
    ) -> SharedHistogram {
        let hist = SharedHistogram::new();
        let mut inner = self.inner.lock().unwrap();
        inner
            .family(name, help, MetricKind::Histogram)
            .metrics
            .push(Metric::Histogram {
                labels: own_labels(labels),
                hist: hist.clone(),
                scale,
            });
        hist
    }

    /// Replaces the free-form exposition text appended after the
    /// registered families (e.g. a finished run's full report).
    pub fn set_extra(&self, text: String) {
        self.inner.lock().unwrap().extra = text;
    }

    /// Renders every family (plus any extra text) as Prometheus 0.0.4
    /// exposition text.
    pub fn render(&self) -> String {
        let inner = self.inner.lock().unwrap();
        let mut exp = Exposition::new();
        for family in &inner.families {
            match family.kind {
                MetricKind::Histogram => {
                    exp.header(&family.name, &family.help, MetricKind::Histogram);
                    for metric in &family.metrics {
                        if let Metric::Histogram {
                            labels,
                            hist,
                            scale,
                        } = metric
                        {
                            let borrowed: Vec<(&str, &str)> = labels
                                .iter()
                                .map(|(k, v)| (k.as_str(), v.as_str()))
                                .collect();
                            exp.histogram_samples(
                                &family.name,
                                &borrowed,
                                &hist.snapshot(),
                                *scale,
                            );
                        }
                    }
                }
                _ => {
                    exp.header(&family.name, &family.help, family.kind);
                    for metric in &family.metrics {
                        if let Metric::Gauge { labels, gauge } = metric {
                            let borrowed: Vec<(&str, &str)> = labels
                                .iter()
                                .map(|(k, v)| (k.as_str(), v.as_str()))
                                .collect();
                            exp.sample_u64(&family.name, &borrowed, gauge.get());
                        }
                    }
                }
            }
        }
        let mut text = exp.render();
        if !inner.extra.is_empty() {
            text.push_str(&inner.extra);
            if !inner.extra.ends_with('\n') {
                text.push('\n');
            }
        }
        text
    }
}

/// A minimal HTTP/1.x server answering `GET /metrics` from a [`Registry`].
///
/// The accept loop runs on its own thread and shuts down when the server
/// is dropped. Each request is served inline — a scrape is one cheap
/// render — and the connection is closed after the response, which is all
/// `curl` and Prometheus' scraper need.
pub struct MetricsServer {
    local: SocketAddr,
    shutdown: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl MetricsServer {
    /// Binds `addr` (e.g. `"127.0.0.1:9300"`, port 0 for ephemeral) and
    /// starts serving `registry`.
    pub fn bind(addr: impl ToSocketAddrs, registry: Registry) -> std::io::Result<MetricsServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let stop = shutdown.clone();
        let thread = std::thread::Builder::new()
            .name("obs-metrics".to_string())
            .spawn(move || accept_loop(listener, registry, stop))?;
        Ok(MetricsServer {
            local,
            shutdown,
            thread: Some(thread),
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

fn accept_loop(listener: TcpListener, registry: Registry, shutdown: Arc<AtomicBool>) {
    while !shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                // Scrapes are rare and rendering is cheap; serving inline
                // keeps the server to one thread.
                let _ = serve_one(stream, &registry);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(20)),
        }
    }
}

fn serve_one(mut stream: TcpStream, registry: &Registry) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_millis(500)))?;
    stream.set_nodelay(true).ok();

    // Read until the end of the request head (or a modest cap — the
    // request line is all we look at).
    let mut buf = Vec::with_capacity(512);
    let mut chunk = [0u8; 512];
    loop {
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => {
                buf.extend_from_slice(&chunk[..n]);
                if buf.windows(4).any(|w| w == b"\r\n\r\n") || buf.len() > 8192 {
                    break;
                }
            }
            Err(_) => break,
        }
    }
    let head = String::from_utf8_lossy(&buf);
    let mut parts = head.lines().next().unwrap_or("").split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    let path = path.split('?').next().unwrap_or(path);

    let (status, body) = if method != "GET" {
        ("405 Method Not Allowed", "method not allowed\n".to_string())
    } else if path == "/metrics" || path == "/" {
        ("200 OK", registry.render())
    } else {
        ("404 Not Found", "try /metrics\n".to_string())
    };
    let response = format!(
        "HTTP/1.1 {status}\r\n\
         Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n\
         Content-Length: {}\r\n\
         Connection: close\r\n\
         \r\n\
         {body}",
        body.len(),
    );
    stream.write_all(response.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scrape(addr: SocketAddr, request: &str) -> String {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(request.as_bytes()).unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        response
    }

    #[test]
    fn registry_renders_gauges_histograms_and_extra() {
        let registry = Registry::new();
        let g0 = registry.gauge("queue_depth", "Waiting messages.", &[("peer", "1")]);
        let g1 = registry.gauge("queue_depth", "ignored on reuse", &[("peer", "2")]);
        let h = registry.histogram("lat_seconds", "Latency.", &[("setup", "a")], 1e9);
        let h2 = registry.histogram("lat_seconds", "ignored on reuse", &[("setup", "b")], 1e9);
        g0.set(4);
        g1.set(9);
        h.record(2_000_000_000);
        h2.record(3_000_000_000);
        registry.set_extra("# extra section\nup 1".to_string());
        let text = registry.render();
        // One family header, both label sets.
        assert_eq!(text.matches("# TYPE queue_depth gauge").count(), 1);
        assert!(text.contains("queue_depth{peer=\"1\"} 4"));
        assert!(text.contains("queue_depth{peer=\"2\"} 9"));
        // The histogram family header appears once despite two label sets.
        assert_eq!(text.matches("# TYPE lat_seconds histogram").count(), 1);
        assert!(text.contains("lat_seconds_count{setup=\"a\"} 1"));
        assert!(text.contains("lat_seconds_count{setup=\"b\"} 1"));
        assert!(text.contains("setup=\"a\",le=\"+Inf\"} 1"));
        assert!(text.ends_with("# extra section\nup 1\n"));
    }

    #[test]
    fn serves_metrics_over_http() {
        let registry = Registry::new();
        let gauge = registry.gauge("frame_drops", "Dropped frames.", &[]);
        gauge.set(3);
        let server = MetricsServer::bind("127.0.0.1:0", registry.clone()).unwrap();
        let addr = server.local_addr();

        let ok = scrape(addr, "GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n");
        assert!(ok.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(ok.contains("text/plain; version=0.0.4"));
        assert!(ok.contains("frame_drops 3"));

        // Scrapes see live updates.
        gauge.set(8);
        let again = scrape(addr, "GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n");
        assert!(again.contains("frame_drops 8"));

        let missing = scrape(addr, "GET /nope HTTP/1.1\r\n\r\n");
        assert!(missing.starts_with("HTTP/1.1 404"));
        let wrong = scrape(addr, "POST /metrics HTTP/1.1\r\n\r\n");
        assert!(wrong.starts_with("HTTP/1.1 405"));

        drop(server); // shuts the accept loop down
        assert!(
            TcpStream::connect(addr).is_err() || {
                // The OS may still accept briefly; a second attempt after the
                // join must fail.
                std::thread::sleep(Duration::from_millis(50));
                TcpStream::connect(addr).is_err()
            }
        );
    }
}
