//! Per-value latency spans stitched from the flat event stream.
//!
//! A client value's life is `value_submitted` → first `phase2a` → first
//! `quorum_reached` → first `decided` → first `ordered_delivered`.
//! [`SpanTracker`] folds a trace into one [`ValueSpan`] per `(origin, seq)`
//! pair and summarizes where time went — the breakdown separates gossip
//! propagation (submit → 2a), vote collection (2a → quorum), the
//! coordinator's decision fan-out (quorum → decided) and head-of-line
//! blocking in ordered delivery (decided → ordered).

use std::collections::HashMap;

use crate::event::{Event, TimedEvent};

/// Milestone timestamps (nanoseconds) for one client value.
///
/// Each field is the *first* time the milestone was observed on any node;
/// with several processes racing, the first observation is what bounds
/// end-to-end latency.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ValueSpan {
    /// The value entered the system.
    pub submitted: Option<u64>,
    /// A coordinator proposed it (Phase 2a).
    pub phase2a: Option<u64>,
    /// A majority of votes was first assembled.
    pub quorum: Option<u64>,
    /// It was first decided.
    pub decided: Option<u64>,
    /// It was first released in instance order.
    pub ordered: Option<u64>,
}

impl ValueSpan {
    /// Whether every milestone was observed.
    pub fn complete(&self) -> bool {
        self.submitted.is_some()
            && self.phase2a.is_some()
            && self.quorum.is_some()
            && self.decided.is_some()
            && self.ordered.is_some()
    }

    /// Submit-to-ordered-delivery latency, if both ends were seen.
    pub fn total(&self) -> Option<u64> {
        Some(self.ordered?.saturating_sub(self.submitted?))
    }
}

fn first(slot: &mut Option<u64>, at: u64) {
    if slot.is_none() {
        *slot = Some(at);
    }
}

/// Extracts one segment's duration (ns) from a [`ValueSpan`], or `None`
/// while the span is incomplete.
pub type SegmentMeasure = fn(&ValueSpan) -> Option<u64>;

/// The pipeline segments of a value's life, in order: name plus the
/// extractor producing the segment's duration (ns) from a [`ValueSpan`],
/// ending with the total. One definition shared by [`SpanTracker::summary`]
/// and the trace analyzer's per-phase latency distributions.
pub const SEGMENTS: [(&str, SegmentMeasure); 5] = [
    ("submit -> phase2a", |s| {
        Some(s.phase2a?.saturating_sub(s.submitted?))
    }),
    ("phase2a -> quorum", |s| {
        Some(s.quorum?.saturating_sub(s.phase2a?))
    }),
    ("quorum -> decided", |s| {
        Some(s.decided?.saturating_sub(s.quorum?))
    }),
    ("decided -> ordered", |s| {
        Some(s.ordered?.saturating_sub(s.decided?))
    }),
    ("total submit -> ordered", ValueSpan::total),
];

/// Aggregated statistics for one phase segment across all tracked values.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegmentStats {
    /// Human-readable segment name.
    pub name: &'static str,
    /// Values for which both segment endpoints were observed.
    pub count: usize,
    /// Mean segment latency in nanoseconds.
    pub mean_ns: u64,
    /// Worst segment latency in nanoseconds.
    pub max_ns: u64,
}

/// The per-phase latency breakdown of a whole trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanSummary {
    /// Distinct `(origin, seq)` values seen.
    pub tracked: usize,
    /// Values whose every milestone was observed.
    pub complete: usize,
    /// One entry per phase segment, pipeline order, ending with the total.
    pub segments: Vec<SegmentStats>,
}

/// Folds timed events into per-value spans.
#[derive(Debug, Clone, Default)]
pub struct SpanTracker {
    spans: HashMap<(u32, u64), ValueSpan>,
}

impl SpanTracker {
    /// An empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Feeds one event; non-value events are ignored.
    pub fn observe(&mut self, timed: &TimedEvent) {
        type SlotOf = fn(&mut ValueSpan) -> &mut Option<u64>;
        let at = timed.at;
        let (key, slot_of): ((u32, u64), SlotOf) = match &timed.event {
            Event::ValueSubmitted { origin, seq, .. } => ((*origin, *seq), |s| &mut s.submitted),
            Event::Phase2a { origin, seq, .. } => ((*origin, *seq), |s| &mut s.phase2a),
            Event::QuorumReached { origin, seq, .. } => ((*origin, *seq), |s| &mut s.quorum),
            Event::Decided { origin, seq, .. } => ((*origin, *seq), |s| &mut s.decided),
            Event::OrderedDelivered { origin, seq, .. } => ((*origin, *seq), |s| &mut s.ordered),
            _ => return,
        };
        first(slot_of(self.spans.entry(key).or_default()), at);
    }

    /// Feeds a whole trace.
    pub fn observe_all<'a>(&mut self, events: impl IntoIterator<Item = &'a TimedEvent>) {
        for e in events {
            self.observe(e);
        }
    }

    /// The span for one value, if any of its milestones were seen.
    pub fn span(&self, origin: u32, seq: u64) -> Option<&ValueSpan> {
        self.spans.get(&(origin, seq))
    }

    /// Number of values with at least one milestone.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// Whether no value was tracked.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Per-value spans as `((origin, seq), span)` pairs, in no particular
    /// order.
    pub fn iter(&self) -> impl Iterator<Item = (&(u32, u64), &ValueSpan)> {
        self.spans.iter()
    }

    /// Aggregates the per-phase latency breakdown.
    pub fn summary(&self) -> SpanSummary {
        let segments = SEGMENTS
            .iter()
            .map(|&(name, measure)| {
                let mut count = 0usize;
                let mut sum = 0u128;
                let mut max = 0u64;
                for span in self.spans.values() {
                    if let Some(ns) = measure(span) {
                        count += 1;
                        sum += ns as u128;
                        max = max.max(ns);
                    }
                }
                SegmentStats {
                    name,
                    count,
                    mean_ns: if count == 0 {
                        0
                    } else {
                        (sum / count as u128) as u64
                    },
                    max_ns: max,
                }
            })
            .collect();
        SpanSummary {
            tracked: self.spans.len(),
            complete: self.spans.values().filter(|s| s.complete()).count(),
            segments,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at(at: u64, event: Event) -> TimedEvent {
        TimedEvent { at, event }
    }

    fn pipeline(origin: u32, seq: u64, base: u64) -> Vec<TimedEvent> {
        vec![
            at(
                base,
                Event::ValueSubmitted {
                    node: 0,
                    origin,
                    seq,
                },
            ),
            at(
                base + 10,
                Event::Phase2a {
                    node: 1,
                    instance: seq,
                    round: 0,
                    origin,
                    seq,
                },
            ),
            at(
                base + 30,
                Event::QuorumReached {
                    node: 1,
                    instance: seq,
                    origin,
                    seq,
                },
            ),
            at(
                base + 35,
                Event::Decided {
                    node: 2,
                    instance: seq,
                    origin,
                    seq,
                },
            ),
            at(
                base + 60,
                Event::OrderedDelivered {
                    node: 2,
                    instance: seq,
                    origin,
                    seq,
                },
            ),
        ]
    }

    #[test]
    fn stitches_one_value_end_to_end() {
        let mut tracker = SpanTracker::new();
        tracker.observe_all(&pipeline(3, 9, 100));
        let span = tracker.span(3, 9).unwrap();
        assert!(span.complete());
        assert_eq!(span.total(), Some(60));
        let summary = tracker.summary();
        assert_eq!(summary.tracked, 1);
        assert_eq!(summary.complete, 1);
        assert_eq!(summary.segments[0].mean_ns, 10);
        assert_eq!(summary.segments[1].mean_ns, 20);
        assert_eq!(summary.segments[2].mean_ns, 5);
        assert_eq!(summary.segments[3].mean_ns, 25);
        assert_eq!(summary.segments[4].mean_ns, 60);
    }

    #[test]
    fn keeps_first_observation_per_milestone() {
        let mut tracker = SpanTracker::new();
        let mut events = pipeline(1, 1, 100);
        // A second, later decision on another node must not move the span.
        events.push(at(
            500,
            Event::Decided {
                node: 4,
                instance: 1,
                origin: 1,
                seq: 1,
            },
        ));
        tracker.observe_all(&events);
        assert_eq!(tracker.span(1, 1).unwrap().decided, Some(135));
    }

    #[test]
    fn incomplete_spans_are_excluded_from_segments() {
        let mut tracker = SpanTracker::new();
        tracker.observe(&at(
            7,
            Event::ValueSubmitted {
                node: 0,
                origin: 2,
                seq: 5,
            },
        ));
        tracker.observe_all(&pipeline(2, 6, 50));
        let summary = tracker.summary();
        assert_eq!(summary.tracked, 2);
        assert_eq!(summary.complete, 1);
        // Only the complete value contributes to segment means.
        assert_eq!(summary.segments[4].count, 1);
    }

    #[test]
    fn distinct_values_do_not_collide() {
        let mut tracker = SpanTracker::new();
        tracker.observe_all(&pipeline(0, 1, 0));
        tracker.observe_all(&pipeline(1, 1, 1000));
        assert_eq!(tracker.len(), 2);
        assert_eq!(tracker.span(0, 1).unwrap().total(), Some(60));
        assert_eq!(tracker.span(1, 1).unwrap().total(), Some(60));
    }
}
