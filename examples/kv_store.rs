//! A replicated key-value store: state machine replication over gossip
//! consensus — the application class the paper's introduction motivates.
//!
//! Each of seven replicas holds a `HashMap<String, String>` and applies the
//! totally ordered command stream that Paxos-over-Semantic-Gossip produces.
//! Clients issue `SET key value` and `DEL key` commands at *different*
//! replicas; because every replica applies the same sequence, all copies of
//! the store converge to the identical state — even though no replica is
//! directly connected to all others.
//!
//! Run with:
//! ```text
//! cargo run --example kv_store
//! ```

use std::collections::HashMap;

use gossip_consensus::prelude::*;

/// A store command, encoded as a tiny line-based wire format.
#[derive(Debug, Clone, PartialEq)]
enum Cmd {
    Set(String, String),
    Del(String),
}

impl Cmd {
    fn encode(&self) -> Vec<u8> {
        match self {
            Cmd::Set(k, v) => format!("SET {k} {v}").into_bytes(),
            Cmd::Del(k) => format!("DEL {k}").into_bytes(),
        }
    }

    fn decode(bytes: &[u8]) -> Option<Cmd> {
        let text = std::str::from_utf8(bytes).ok()?;
        let mut parts = text.splitn(3, ' ');
        match (parts.next()?, parts.next(), parts.next()) {
            ("SET", Some(k), Some(v)) => Some(Cmd::Set(k.to_string(), v.to_string())),
            ("DEL", Some(k), None) => Some(Cmd::Del(k.to_string())),
            _ => None,
        }
    }
}

/// One replica: consensus stack + the application state machine.
struct Replica {
    gossip: GossipNode<PaxosMessage, PaxosSemantics>,
    paxos: PaxosProcess,
    store: HashMap<String, String>,
    applied: u64,
}

impl Replica {
    fn apply_ready(&mut self) {
        for (_instance, value) in self.paxos.take_decisions() {
            let cmd = Cmd::decode(value.payload()).expect("well-formed command");
            match cmd {
                Cmd::Set(k, v) => {
                    self.store.insert(k, v);
                }
                Cmd::Del(k) => {
                    self.store.remove(&k);
                }
            }
            self.applied += 1;
        }
    }
}

fn main() {
    let n = 7;
    let config = PaxosConfig::new(n);
    // A sparse random overlay: every replica talks to ~log2(n) peers.
    let overlay = {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(2024);
        connected_k_out(n, paper_fanout(n), &mut rng, 100).expect("connected overlay")
    };

    let mut replicas: Vec<Replica> = (0..n)
        .map(|i| Replica {
            gossip: GossipNode::new(
                NodeId::new(i as u32),
                overlay
                    .neighbors(i)
                    .iter()
                    .map(|&p| NodeId::new(p as u32))
                    .collect(),
                GossipConfig::default(),
                PaxosSemantics::full(config.clone()),
            ),
            paxos: PaxosProcess::new(NodeId::new(i as u32), config.clone()),
            store: HashMap::new(),
            applied: 0,
        })
        .collect();

    for out in replicas[0].paxos.start_round(Round::ZERO) {
        replicas[0].gossip.broadcast(out.msg);
    }

    // Clients at different replicas; note the conflicting writes to "color"
    // — total order makes the outcome identical everywhere.
    let workload: Vec<(usize, Cmd)> = vec![
        (1, Cmd::Set("color".into(), "red".into())),
        (4, Cmd::Set("color".into(), "blue".into())),
        (2, Cmd::Set("shape".into(), "circle".into())),
        (6, Cmd::Set("size".into(), "xl".into())),
        (3, Cmd::Del("shape".into())),
        (5, Cmd::Set("weight".into(), "12kg".into())),
    ];
    for (replica, cmd) in &workload {
        let (_, out) = replicas[*replica].paxos.submit_payload(cmd.encode());
        println!("client at replica {replica}: {cmd:?}");
        for o in out {
            replicas[*replica].gossip.broadcast(o.msg);
        }
    }

    // Dissemination rounds until quiescence.
    loop {
        let mut progressed = false;
        for i in 0..n {
            loop {
                let msgs = replicas[i].gossip.take_deliveries();
                if msgs.is_empty() {
                    break;
                }
                progressed = true;
                for msg in msgs {
                    for o in replicas[i].paxos.handle(msg) {
                        replicas[i].gossip.broadcast(o.msg);
                    }
                }
            }
            replicas[i].apply_ready();
            for (peer, msg) in replicas[i].gossip.take_outgoing() {
                replicas[peer.as_index()]
                    .gossip
                    .on_receive(NodeId::new(i as u32), msg);
                progressed = true;
            }
        }
        if !progressed {
            break;
        }
    }

    let reference = replicas[0].store.clone();
    println!(
        "\nfinal replicated state ({} commands applied):",
        replicas[0].applied
    );
    let mut entries: Vec<_> = reference.iter().collect();
    entries.sort();
    for (k, v) in entries {
        println!("  {k} = {v}");
    }
    for r in &replicas {
        assert_eq!(r.store, reference, "replica state diverged!");
        assert_eq!(r.applied, workload.len() as u64);
    }
    println!("\nall {n} replicas converged to the same state ✓");
    // Commands from different clients are concurrent: consensus picks ONE
    // order for the SET/DEL race on "shape" — whichever it is, every
    // replica agrees (checked above). Announce the outcome.
    match reference.get("shape") {
        Some(v) => println!("the race on \"shape\": SET (= {v}) was ordered after DEL"),
        None => println!("the race on \"shape\": DEL was ordered after SET"),
    }
}
