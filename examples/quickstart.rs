//! Quickstart: five Paxos processes reach consensus over semantic gossip,
//! fully in memory.
//!
//! The example builds the paper's stack by hand — gossip nodes with the
//! Paxos semantic rules plugged in, one Paxos process per node — wires them
//! over a partially connected overlay (a ring plus one chord, so no process
//! talks to everyone), submits a handful of client values at different
//! processes, and shows that every process delivers the same totally
//! ordered sequence.
//!
//! Run with:
//! ```text
//! cargo run --example quickstart
//! ```

use gossip_consensus::prelude::*;

/// One in-memory node: the gossip substrate plus the Paxos state machine.
struct Node {
    gossip: GossipNode<PaxosMessage, PaxosSemantics>,
    paxos: PaxosProcess,
}

impl Node {
    /// Feeds Paxos everything the gossip layer delivered, broadcasting
    /// whatever Paxos emits in response.
    fn pump(&mut self) -> bool {
        let mut progressed = false;
        loop {
            let deliveries = self.gossip.take_deliveries();
            if deliveries.is_empty() {
                break;
            }
            progressed = true;
            for msg in deliveries {
                for out in self.paxos.handle(msg) {
                    self.gossip.broadcast(out.msg);
                }
            }
        }
        progressed
    }
}

fn main() {
    let n = 5;
    let config = PaxosConfig::new(n);

    // A ring with one chord: node i talks to i±1 only (plus 0–2), so
    // messages need multiple hops — the partially connected network the
    // paper targets.
    let mut overlay = Graph::new(n);
    for i in 0..n {
        overlay.add_edge(i, (i + 1) % n);
    }
    overlay.add_edge(0, 2);

    let mut nodes: Vec<Node> = (0..n)
        .map(|i| {
            let peers = overlay
                .neighbors(i)
                .iter()
                .map(|&p| NodeId::new(p as u32))
                .collect();
            Node {
                gossip: GossipNode::new(
                    NodeId::new(i as u32),
                    peers,
                    GossipConfig::default(),
                    PaxosSemantics::full(config.clone()),
                ),
                paxos: PaxosProcess::new(NodeId::new(i as u32), config.clone()),
            }
        })
        .collect();

    // Process 0 becomes the coordinator of round 0 (Phase 1 over gossip).
    for out in nodes[0].paxos.start_round(Round::ZERO) {
        nodes[0].gossip.broadcast(out.msg);
    }

    // Clients submit values at *different* processes; non-coordinators
    // forward them through gossip.
    for (proc_id, payload) in [
        (1usize, "alpha"),
        (3, "bravo"),
        (4, "charlie"),
        (0, "delta"),
    ] {
        let (value, out) = nodes[proc_id]
            .paxos
            .submit_payload(payload.as_bytes().to_vec());
        println!(
            "client at p{proc_id} submits {:?} as {}",
            payload,
            value.id()
        );
        for o in out {
            nodes[proc_id].gossip.broadcast(o.msg);
        }
    }

    // Synchronous dissemination rounds until the network quiesces.
    let mut rounds = 0;
    loop {
        let mut progressed = false;
        for i in 0..n {
            progressed |= nodes[i].pump();
            for (peer, msg) in nodes[i].gossip.take_outgoing() {
                nodes[peer.as_index()]
                    .gossip
                    .on_receive(NodeId::new(i as u32), msg);
                progressed = true;
            }
        }
        if !progressed {
            break;
        }
        rounds += 1;
        assert!(rounds < 10_000, "did not quiesce");
    }

    println!("\nnetwork quiesced after {rounds} gossip rounds\n");
    let reference: Vec<(InstanceId, Value)> = {
        let decisions = nodes[0].paxos.take_decisions();
        for (instance, value) in &decisions {
            println!(
                "p0 delivers {instance}: {:?} (from {})",
                String::from_utf8_lossy(value.payload()),
                value.id()
            );
        }
        decisions
    };
    assert_eq!(reference.len(), 4, "all four values must be ordered");

    for (i, node) in nodes.iter_mut().enumerate().skip(1) {
        let decisions = node.paxos.take_decisions();
        assert_eq!(decisions, reference, "p{i} must deliver the same order");
    }
    println!("\nall {n} processes delivered the same totally ordered sequence ✓");

    // The gossip layer did real work: count what semantics saved.
    let stats = nodes[1].gossip.stats();
    println!(
        "p1 gossip stats: received {} messages, {} duplicates suppressed, \
         {} filtered, {} merged by aggregation",
        stats.received, stats.duplicates, stats.filtered, stats.aggregated_away
    );
}
