//! Geo-distributed state machine replication: the paper's headline
//! comparison on the simulated WAN.
//!
//! Thirteen clients — one per AWS region — submit 1 KiB commands to a Paxos
//! deployment spread over all regions, exactly like §4.2 of the paper. The
//! example runs the same workload under the three communication substrates
//! and prints the comparison: Baseline (full connectivity, best case),
//! classic Gossip (partially connected overlay), and Semantic Gossip.
//!
//! Run with:
//! ```text
//! cargo run --release --example wan_paxos [n] [rate]
//! ```

use gossip_consensus::prelude::*;

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().map(|a| a.parse().expect("n")).unwrap_or(13);
    let rate: f64 = args.next().map(|a| a.parse().expect("rate")).unwrap_or(26.0);

    println!("Paxos across 13 regions: n = {n}, {rate:.0} commands/s aggregate\n");
    println!(
        "{:<16} {:>12} {:>14} {:>12} {:>12} {:>10}",
        "setup", "ordered", "throughput/s", "avg lat", "p99 lat", "dup %"
    );

    // The same random overlay for both gossip setups, as the paper enforces.
    let overlay = {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        connected_k_out(n, paper_fanout(n), &mut rng, 100).expect("connected overlay")
    };

    for setup in [Setup::Baseline, Setup::Gossip, Setup::SemanticGossip] {
        let mut params = ClusterParams::paper(n, setup)
            .with_rate(rate)
            .with_seconds(4.0, 1.0)
            .with_seed(42);
        if setup.uses_gossip() {
            params = params.with_overlay(overlay.clone());
        }
        let mut m = run_cluster(&params);
        assert!(m.safety_ok, "replicas diverged — Paxos safety violated!");
        let (avg, _std) = m.latency_stats();
        let p99 = m.latency.percentile(99.0).unwrap_or(SimDuration::ZERO);
        println!(
            "{:<16} {:>12} {:>14.1} {:>12} {:>12} {:>9.1}%",
            setup.name(),
            m.ordered,
            m.throughput(),
            format!("{avg}"),
            format!("{p99}"),
            m.duplicate_ratio() * 100.0,
        );
    }

    println!(
        "\nBaseline assumes the coordinator can reach every process directly;\n\
         the gossip setups only need the random overlay (each process talks\n\
         to ~log2(n) peers) — the price is latency, and Semantic Gossip wins\n\
         back a good part of it."
    );
}
