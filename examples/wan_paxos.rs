//! Geo-distributed state machine replication: the paper's headline
//! comparison on the simulated WAN.
//!
//! Thirteen clients — one per AWS region — submit 1 KiB commands to a Paxos
//! deployment spread over all regions, exactly like §4.2 of the paper. The
//! example runs the same workload under the four communication substrates
//! and prints the comparison: Baseline (full connectivity, best case),
//! classic Gossip (partially connected overlay), Semantic Gossip, and
//! eager/lazy (Plumtree-style) dissemination over the same overlay.
//!
//! Run with:
//! ```text
//! cargo run --release --example wan_paxos [n] [rate] [--trace out.jsonl] \
//!     [--setup NAME] [--groups G] [--metrics-addr 127.0.0.1:9300] \
//!     [--linger SECS]
//! ```
//!
//! `--groups G` shards the client values over G independent consensus
//! groups multiplexed on the same substrate (one Paxos group per shard,
//! group-tagged on the wire); each run prints per-shard ordered counts
//! and every shard is audited independently.
//!
//! `--setup NAME` runs only the substrates whose name contains NAME
//! (case-insensitive), e.g. `--setup eager` for an eager/lazy-only run —
//! which is how CI gates the broadcast path's wire-byte redundancy with
//! `tracetool report --max-redundancy` on a single-substrate trace.
//!
//! With `--trace`, every run records a structured execution trace: the
//! merged JSONL event stream of all three runs is written to the given
//! file, and a per-phase latency breakdown (submit → 2a → quorum →
//! decision → in-order delivery) is printed per setup.
//!
//! With `--metrics-addr`, a `/metrics` HTTP endpoint serves the
//! comparison as Prometheus text while the runs execute: per-setup
//! ordered counts, a latency histogram family, health-engine stall
//! gauges, and the most recent run's full exposition. `--linger` keeps
//! the endpoint up after the last run.
//!
//! The always-on flight recorder keeps the tail of every run's event
//! stream; if a run stalls or fails its safety audit, the tail is dumped
//! as JSONL next to the working directory (`wan-flight-<setup>.jsonl`)
//! so the minutes before the incident can be replayed through
//! `tracetool`.

use gossip_consensus::obs::{MetricsServer, Registry};
use gossip_consensus::prelude::*;
use gossip_consensus::testbed::report::span_table;

fn main() {
    let mut positional = Vec::new();
    let mut trace_path: Option<String> = None;
    let mut setup_filter: Option<String> = None;
    let mut metrics_addr: Option<String> = None;
    let mut linger = std::time::Duration::ZERO;
    let mut groups: usize = 1;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--trace" => trace_path = Some(args.next().expect("--trace needs a file path")),
            "--groups" => {
                groups = args
                    .next()
                    .expect("--groups needs a count")
                    .parse()
                    .expect("--groups needs an integer");
            }
            "--setup" => {
                setup_filter = Some(
                    args.next()
                        .expect("--setup needs a substrate name")
                        .to_lowercase(),
                );
            }
            "--metrics-addr" => {
                metrics_addr = Some(args.next().expect("--metrics-addr needs host:port"));
            }
            "--linger" => {
                let secs: u64 = args
                    .next()
                    .expect("--linger needs seconds")
                    .parse()
                    .expect("--linger needs an integer");
                linger = std::time::Duration::from_secs(secs);
            }
            _ => positional.push(arg),
        }
    }
    let n: usize = positional
        .first()
        .map(|a| a.parse().expect("n"))
        .unwrap_or(13);
    let rate: f64 = positional
        .get(1)
        .map(|a| a.parse().expect("rate"))
        .unwrap_or(26.0);

    // Live comparison metrics, updated after each setup's run.
    let registry = metrics_addr.as_ref().map(|_| Registry::new());
    let server = metrics_addr.as_ref().map(|addr| {
        let server = MetricsServer::bind(addr.as_str(), registry.clone().unwrap())
            .expect("bind metrics endpoint");
        println!("metrics: http://{}/metrics", server.local_addr());
        server
    });

    println!(
        "Paxos across 13 regions: n = {n}, {rate:.0} commands/s aggregate{}\n",
        if groups > 1 {
            format!(", sharded over {groups} groups")
        } else {
            String::new()
        }
    );
    println!(
        "{:<16} {:>12} {:>14} {:>12} {:>12} {:>10}",
        "setup", "ordered", "throughput/s", "avg lat", "p99 lat", "dup %"
    );

    // The same random overlay for both gossip setups, as the paper enforces.
    let overlay = {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        connected_k_out(n, paper_fanout(n), &mut rng, 100).expect("connected overlay")
    };

    let mut jsonl = String::new();
    let mut breakdowns = Vec::new();
    let setups = [
        Setup::Baseline,
        Setup::Gossip,
        Setup::SemanticGossip,
        Setup::EagerLazyGossip,
    ]
    .into_iter()
    .filter(|s| match &setup_filter {
        Some(f) => s.name().to_lowercase().contains(f),
        None => true,
    });
    for setup in setups {
        let mut params = ClusterParams::paper(n, setup)
            .with_groups(groups)
            .with_rate(rate)
            .with_seconds(4.0, 1.0)
            .with_seed(42);
        if setup.uses_gossip() {
            params = params.with_overlay(overlay.clone());
        }
        if trace_path.is_some() {
            params.trace_capacity = 1 << 16;
        }
        let mut m = run_cluster(&params);
        // Flight dump on incident: safety failure or a detected stall.
        let stalls = m.health.as_ref().map_or(0, |h| h.stalls_detected);
        if !m.safety_ok || stalls > 0 {
            let reason = if m.safety_ok {
                format!("{} stall(s) detected", stalls)
            } else {
                "safety audit failed".to_string()
            };
            if let Some(dump) = m.flight_dump(&reason) {
                let path = format!("wan-flight-{}.jsonl", setup.name().to_lowercase());
                std::fs::write(&path, &dump).expect("write flight dump");
                eprintln!("flight: {path} ({} events)", dump.lines().count());
            }
        }
        assert!(m.safety_ok, "replicas diverged — Paxos safety violated!");
        let (avg, _std) = m.latency_stats();
        let p99 = m.latency.percentile(99.0).unwrap_or(SimDuration::ZERO);
        println!(
            "{:<16} {:>12} {:>14.1} {:>12} {:>12} {:>9.1}%",
            setup.name(),
            m.ordered,
            m.throughput(),
            format!("{avg}"),
            format!("{p99}"),
            m.duplicate_ratio() * 100.0,
        );
        if groups > 1 {
            let per_shard: Vec<String> = m
                .ordered_by_group
                .iter()
                .enumerate()
                .map(|(g, o)| format!("g{g}={o}"))
                .collect();
            println!(
                "  shards: {} ({} audit(s) clean)",
                per_shard.join(" "),
                m.audits.len()
            );
        }
        if let Some(t) = &m.trace_jsonl {
            jsonl.push_str(t);
        }
        if let Some(summary) = &m.span_summary {
            breakdowns.push((setup.name(), span_table(summary).render()));
        }
        if let Some(h) = &m.health {
            if h.stalls_detected > 0 {
                println!(
                    "  health: {} stall(s), {} cleared, worst {} ms{}",
                    h.stalls_detected,
                    h.stalls_cleared,
                    h.max_stall_ms,
                    match h.stalled_instance {
                        Some(i) => format!(", instance {i} still stalled"),
                        None => String::new(),
                    }
                );
            }
        }
        if let Some(registry) = &registry {
            // Comparison families accumulate one label set per setup; the
            // `wan_*` names stay disjoint from the per-run exposition
            // appended below.
            let labels: &[(&str, &str)] = &[("setup", setup.name())];
            registry
                .gauge("wan_ordered_total", "In-window values ordered.", labels)
                .set(m.ordered);
            registry
                .gauge(
                    "wan_not_ordered_total",
                    "In-window values never ordered.",
                    labels,
                )
                .set(m.not_ordered_in_window);
            // Per-class wire bytes off the resource ledger: one label set
            // per (setup, class), so the semantic filter's savings read
            // directly off the scrape as Gossip vs SemanticGossip rows.
            for (class, bytes) in m.ledger.bytes_out_by_class() {
                registry
                    .gauge(
                        "wan_wire_bytes_total",
                        "Simulated wire bytes sent, by message class.",
                        &[("setup", setup.name()), ("class", &class)],
                    )
                    .set(bytes);
            }
            if let Some(h) = &m.health {
                registry
                    .gauge(
                        "wan_health_stalls_detected",
                        "Progress stalls detected by the health engine.",
                        labels,
                    )
                    .set(h.stalls_detected);
                registry
                    .gauge(
                        "wan_health_max_stall_ms",
                        "Longest observed progress stall in milliseconds.",
                        labels,
                    )
                    .set(h.max_stall_ms);
            }
            registry
                .histogram(
                    "wan_latency_seconds",
                    "Client-observed end-to-end latency.",
                    labels,
                    1e9,
                )
                .merge(&m.latency.to_log());
            // The most recent run's full exposition (headers would repeat
            // if all three were concatenated).
            registry.set_extra(m.prometheus());
        }
    }

    if let Some(path) = &trace_path {
        std::fs::write(path, &jsonl).expect("write trace file");
        println!("\nwrote {} trace events to {path}", jsonl.lines().count());
        for (name, table) in &breakdowns {
            println!("\nper-phase latency — {name}:\n{table}");
        }
    }

    println!(
        "\nBaseline assumes the coordinator can reach every process directly;\n\
         the gossip setups only need the random overlay (each process talks\n\
         to ~log2(n) peers) — the price is latency, and Semantic Gossip wins\n\
         back a good part of it."
    );

    if let Some(server) = server {
        if !linger.is_zero() {
            println!(
                "\nserving final metrics at http://{}/metrics for {}s",
                server.local_addr(),
                linger.as_secs()
            );
            std::thread::sleep(linger);
        }
        drop(server);
    }
}
