//! Paxos over Semantic Gossip on a real network: five OS processes' worth
//! of nodes, each with its own TCP endpoint on loop-back, a partially
//! connected overlay, and the full gossip + semantics + Paxos stack.
//!
//! This is the workspace's libp2p-substitute demonstration: protocol
//! messages are encoded with the hand-written wire codec, framed, and
//! pushed over real sockets by per-peer send threads with bounded queues.
//! Frames travel in the multi-group wire format (`Grouped<PaxosMessage>`:
//! a leading group-id byte), so this single-group deployment speaks the
//! same protocol as a sharded one.
//!
//! Run with:
//! ```text
//! cargo run --example live_tcp [--trace out.jsonl] \
//!     [--metrics-addr 127.0.0.1:9300] [--linger SECS]
//! ```
//!
//! With `--trace`, every node records transport lifecycle, frame traffic
//! and Paxos phase transitions (wall-clock timestamps) into one shared
//! ring; the merged JSONL stream is written to the given file and a
//! per-phase latency breakdown is printed.
//!
//! With `--metrics-addr`, a `/metrics` HTTP endpoint serves live
//! Prometheus text while the run is in flight: per-peer send-queue depth,
//! duplicate-cache occupancy, the open Paxos instance window, dropped
//! frames, an outgoing frame-size histogram, the health engine's
//! liveness gauges (`health_stalls_detected`, `health_oldest_open_age_ms`,
//! `health_open_instances`), and windowed resource rates —
//! `bytes_per_sec{node,class}` per Paxos message class and
//! `cpu_ns_per_sec{node,subsystem}` for the transport and Paxos hot
//! sections, both smoothed over a 10 s sliding [`Series`] window.
//! `--linger` keeps the endpoint up for that many seconds after
//! consensus completes, so the final state can be scraped with `curl`.
//!
//! Health is always on, metrics or not: every node tees its event stream
//! into a private flight ring, replays it through a [`HealthTracker`]
//! every 250 ms, and — should the log stop advancing — prints the stall
//! and dumps the ring's tail to `live-flight-node<id>.jsonl` for
//! `tracetool` to dissect.

use std::collections::HashMap;
use std::net::SocketAddr;
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

use gossip_consensus::gossip::codec::Wire;
use gossip_consensus::gossip::RecentCache;
use gossip_consensus::obs::{
    Event, FlightRecorder, HealthConfig, HealthTracker, MetricsServer, Registry, Series,
    SharedGauge, SharedHistogram, SharedRing, SpanTracker, Tee,
};
use gossip_consensus::paxos::MemoryStorage;
use gossip_consensus::prelude::*;
use gossip_consensus::testbed::report::span_table;
use gossip_consensus::transport::{Bytes, Endpoint, EndpointConfig, PeerEvent};

const N: usize = 5;

/// Per-node flight-recorder ring: enough to hold the full event tail of a
/// short run, bounded on a long one.
const FLIGHT_CAPACITY: usize = 4096;

/// Every node records into the global trace ring *and* its private flight
/// ring from a single instrumentation point.
type NodeObs = Tee<SharedRing, SharedRing>;

/// The deployment runs one consensus group, but its frames travel in the
/// multi-group wire format — one group-id byte ahead of the Paxos
/// encoding — so a sharded peer speaks the same protocol.
const GROUP: u32 = 0;

/// What actually travels on the wire: a group-tagged Paxos message.
type WireMsg = Grouped<PaxosMessage>;

/// The fully instrumented node stack used by this example.
type Gossip = GossipNode<WireMsg, GroupedSemantics<PaxosSemantics>, RecentCache, NodeObs>;
type Paxos = gossip_consensus::paxos::PaxosProcess<MemoryStorage, NodeObs>;

fn main() {
    let mut trace_path: Option<String> = None;
    let mut metrics_addr: Option<String> = None;
    let mut linger = Duration::ZERO;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--trace" => trace_path = Some(args.next().expect("--trace needs a file path")),
            "--metrics-addr" => {
                metrics_addr = Some(args.next().expect("--metrics-addr needs host:port"));
            }
            "--linger" => {
                let secs: u64 = args
                    .next()
                    .expect("--linger needs seconds")
                    .parse()
                    .expect("--linger needs an integer");
                linger = Duration::from_secs(secs);
            }
            other => panic!("unknown argument: {other}"),
        }
    }
    // One ring shared by every node and thread; capacity 0 (when not
    // tracing) records nothing.
    let ring = SharedRing::new(if trace_path.is_some() { 1 << 16 } else { 0 });

    // Live metrics, scrapeable while the run is in flight.
    let registry = metrics_addr.as_ref().map(|_| Registry::new());
    let server = metrics_addr.as_ref().map(|addr| {
        let server = MetricsServer::bind(addr.as_str(), registry.clone().unwrap())
            .expect("bind metrics endpoint");
        println!("metrics: http://{}/metrics", server.local_addr());
        server
    });

    // Ring + chord overlay: nobody is connected to everyone.
    let mut overlay = Graph::new(N);
    for i in 0..N {
        overlay.add_edge(i, (i + 1) % N);
    }
    overlay.add_edge(1, 3);

    // Bind all endpoints first so every address is known before dialing.
    let endpoints: Vec<Endpoint> = (0..N as u32)
        .map(|i| {
            let config = EndpointConfig::new(NodeId::new(i)).with_observer(ring.clone());
            Endpoint::bind(config, "127.0.0.1:0").unwrap()
        })
        .collect();
    let addrs: HashMap<usize, SocketAddr> = endpoints
        .iter()
        .enumerate()
        .map(|(i, e)| (i, e.local_addr()))
        .collect();

    // Each node dials its higher-numbered overlay neighbors (one TCP
    // connection per edge, used in both directions).
    for (a, b) in overlay.edges() {
        endpoints[a].dial(addrs[&b]).unwrap();
    }

    // Wait until every endpoint sees all its overlay neighbors.
    let deadline = Instant::now() + Duration::from_secs(10);
    for (i, e) in endpoints.iter().enumerate() {
        while e.peers().len() < overlay.degree(i) {
            assert!(Instant::now() < deadline, "connection setup timed out");
            std::thread::sleep(Duration::from_millis(10));
        }
    }
    println!(
        "overlay connected: {} nodes, {} TCP links",
        N,
        overlay.num_edges()
    );

    let (results_tx, results_rx) = mpsc::channel();
    let mut workers = Vec::new();
    for (i, endpoint) in endpoints.into_iter().enumerate() {
        let results = results_tx.clone();
        let node_ring = ring.clone();
        let node_registry = registry.clone();
        let neighbors: Vec<NodeId> = overlay
            .neighbors(i)
            .iter()
            .map(|&p| NodeId::new(p as u32))
            .collect();
        workers.push(std::thread::spawn(move || {
            node_main(i, endpoint, neighbors, node_ring, node_registry, results);
        }));
    }
    drop(results_tx);

    // Every node reports its delivered sequence; they must all match.
    let mut sequences: Vec<(usize, Vec<(InstanceId, ValueId)>)> = Vec::new();
    for _ in 0..N {
        sequences.push(results_rx.recv_timeout(Duration::from_secs(30)).unwrap());
    }
    for w in workers {
        w.join().unwrap();
    }
    sequences.sort_by_key(|(id, _)| *id);
    let reference = &sequences[0].1;
    assert_eq!(
        reference.len(),
        N,
        "every submitted command must be ordered"
    );
    for (id, seq) in &sequences {
        assert_eq!(seq, reference, "node {id} diverged");
        println!(
            "node {id} delivered {} commands in the agreed order ✓",
            seq.len()
        );
    }
    println!("\nconsensus over real TCP sockets: all {N} nodes agree.");

    if let Some(path) = &trace_path {
        let events = ring.snapshot();
        let jsonl: String = events.iter().map(|e| e.to_json() + "\n").collect();
        std::fs::write(path, &jsonl).expect("write trace file");
        println!("wrote {} trace events to {path}", events.len());
        let mut spans = SpanTracker::new();
        spans.observe_all(&events);
        println!(
            "\nper-phase latency (wall clock):\n{}",
            span_table(&spans.summary()).render()
        );
    }

    if let Some(server) = server {
        if !linger.is_zero() {
            println!(
                "serving final metrics at http://{}/metrics for {}s",
                server.local_addr(),
                linger.as_secs()
            );
            std::thread::sleep(linger);
        }
        drop(server);
    }
}

/// Per-node live gauges and histograms, registered lazily against the
/// shared [`Registry`].
struct NodeMetrics {
    registry: Registry,
    node: String,
    queue_depth: HashMap<NodeId, SharedGauge>,
    cache_entries: SharedGauge,
    open_instances: SharedGauge,
    frames_dropped: SharedGauge,
    frame_bytes: SharedHistogram,
    bytes_encoded: SharedGauge,
    bytes_sent: SharedGauge,
    clones_avoided: SharedGauge,
    stalls_detected: SharedGauge,
    oldest_open_age_ms: SharedGauge,
    health_open_instances: SharedGauge,
    last_trace_sample: Option<Instant>,
    /// Windowed rate series, one per message class / subsystem, created
    /// lazily the first time a class shows up on this node's wire. Each
    /// entry pairs the sliding window with the gauge it refreshes.
    class_rates: HashMap<&'static str, (Series, SharedGauge)>,
    cpu_rates: HashMap<&'static str, (Series, SharedGauge)>,
    epoch: Instant,
}

/// Sliding window the `/metrics` rates are computed over.
const RATE_WINDOW_NS: u64 = 10_000_000_000;

/// Samples held per rate series: 250 ms cadence times the 10 s window,
/// with slack for jittery ticks.
const RATE_CAPACITY: usize = 64;

impl NodeMetrics {
    fn new(registry: Registry, id: usize) -> Self {
        let node = id.to_string();
        NodeMetrics {
            cache_entries: registry.gauge(
                "gossip_seen_cache_entries",
                "Entries in the duplicate-suppression cache.",
                &[("node", &node)],
            ),
            open_instances: registry.gauge(
                "paxos_open_instances",
                "Instances with votes or undelivered decisions.",
                &[("node", &node)],
            ),
            frames_dropped: registry.gauge(
                "transport_frames_dropped_total",
                "Frames dropped at the transport (unknown peer or full queue).",
                &[("node", &node)],
            ),
            frame_bytes: registry.histogram(
                "transport_frame_bytes",
                "Outgoing frame sizes in bytes.",
                &[("node", &node)],
                1.0,
            ),
            bytes_encoded: registry.gauge(
                "transport_bytes_encoded_total",
                "Payload bytes serialized (each broadcast encoded once).",
                &[("node", &node)],
            ),
            bytes_sent: registry.gauge(
                "transport_bytes_sent_total",
                "Payload bytes enqueued to peers (encoded bytes times fan-out).",
                &[("node", &node)],
            ),
            clones_avoided: registry.gauge(
                "gossip_clones_avoided_total",
                "Payload deep-copies saved by shared fan-out (net of drain clones).",
                &[("node", &node)],
            ),
            stalls_detected: registry.gauge(
                "health_stalls_detected",
                "Progress stalls the node's health tracker has raised.",
                &[("node", &node)],
            ),
            oldest_open_age_ms: registry.gauge(
                "health_oldest_open_age_ms",
                "Age of the oldest unresolved instance or submitted value.",
                &[("node", &node)],
            ),
            health_open_instances: registry.gauge(
                "health_open_instances",
                "Instances the health tracker still sees as open.",
                &[("node", &node)],
            ),
            queue_depth: HashMap::new(),
            last_trace_sample: None,
            class_rates: HashMap::new(),
            cpu_rates: HashMap::new(),
            epoch: Instant::now(),
            registry,
            node,
        }
    }

    /// Refreshes every gauge from the live components; immediately on the
    /// first call and every 250 ms after, the same readings are also
    /// emitted into the trace ring as `*_sampled` events.
    fn sample(
        &mut self,
        endpoint: &Endpoint,
        gossip: &mut Gossip,
        paxos: &Paxos,
        ring: &SharedRing,
        wire: &WireCounters,
    ) {
        for (peer, depth) in endpoint.queue_depths() {
            if !self.queue_depth.contains_key(&peer) {
                let gauge = self.registry.gauge(
                    "transport_send_queue_depth",
                    "Frames queued for a peer's send thread.",
                    &[("node", &self.node), ("peer", &peer.as_u32().to_string())],
                );
                self.queue_depth.insert(peer, gauge);
            }
            self.queue_depth[&peer].set(depth);
        }
        self.cache_entries.set(gossip.cache_occupancy() as u64);
        self.open_instances.set(paxos.instance_window() as u64);
        self.frames_dropped.set(endpoint.dropped());
        self.bytes_encoded.set(wire.encoded);
        self.bytes_sent.set(wire.sent);
        self.clones_avoided.set(gossip.stats().clones_avoided());

        let due = self
            .last_trace_sample
            .is_none_or(|t| t.elapsed() >= Duration::from_millis(250));
        if due {
            self.last_trace_sample = Some(Instant::now());
            gossip.sample_gauges();
            ring.record_shared(Event::InstanceWindowSampled {
                node: self.node.parse().unwrap_or(0),
                open: paxos.instance_window() as u64,
            });
            // Windowed rates: push the cumulative counters into their
            // sliding series and refresh the per-class / per-subsystem
            // gauges from the window's delta rate. Same cadence as the
            // trace samples — the series absorb the tick jitter.
            let now_ns = self.epoch.elapsed().as_nanos() as u64;
            let registry = &self.registry;
            let node = &self.node;
            for (class, total) in &wire.by_class {
                let (series, gauge) = self.class_rates.entry(class).or_insert_with(|| {
                    let gauge = registry.gauge(
                        "bytes_per_sec",
                        "Wire bytes per second by message class (10s window).",
                        &[("node", node), ("class", class)],
                    );
                    (Series::new(RATE_CAPACITY, RATE_WINDOW_NS), gauge)
                });
                series.push(now_ns, *total);
                if let Some(rate) = series.delta_rate_per_sec() {
                    gauge.set(rate.round() as u64);
                }
            }
            for (subsystem, total_ns) in [
                ("transport", wire.cpu_transport_ns),
                ("paxos", wire.cpu_paxos_ns),
            ] {
                let (series, gauge) = self.cpu_rates.entry(subsystem).or_insert_with(|| {
                    let gauge = registry.gauge(
                        "cpu_ns_per_sec",
                        "CPU nanoseconds per second spent in a subsystem's hot section (10s window).",
                        &[("node", node), ("subsystem", subsystem)],
                    );
                    (Series::new(RATE_CAPACITY, RATE_WINDOW_NS), gauge)
                });
                series.push(now_ns, total_ns);
                if let Some(rate) = series.delta_rate_per_sec() {
                    gauge.set(rate.round() as u64);
                }
            }
        }
    }

    /// Refreshes the liveness gauges from the node's health tracker.
    fn sample_health(&self, health: &HealthTracker, now_ns: u64) {
        let s = health.summary();
        self.stalls_detected.set(s.stalls_detected);
        self.health_open_instances.set(s.open_instances);
        self.oldest_open_age_ms
            .set(health.oldest_open_age(now_ns) / 1_000_000);
    }
}

/// Running totals of the encode-once send path: `encoded` counts each
/// distinct broadcast's payload once, `sent` counts it once per peer it
/// fanned out to. `sent / encoded` is the copy amplification the shared
/// frames avoid. `by_class` splits the sent bytes by Paxos message class
/// (the sender knows the kind at encode time), and the `cpu_*_ns` fields
/// accumulate wall time spent inside the two hot sections of the event
/// loop — together they feed the windowed `/metrics` rate gauges.
#[derive(Default)]
struct WireCounters {
    encoded: u64,
    sent: u64,
    by_class: HashMap<&'static str, u64>,
    cpu_transport_ns: u64,
    cpu_paxos_ns: u64,
}

/// The event loop of one node: TCP frames in, gossip + Paxos, TCP frames
/// out.
fn node_main(
    id: usize,
    endpoint: Endpoint,
    neighbors: Vec<NodeId>,
    ring: SharedRing,
    registry: Option<Registry>,
    results: mpsc::Sender<(usize, Vec<(InstanceId, ValueId)>)>,
) {
    // The node's private event stream: the tee feeds the global trace ring
    // and this flight ring from the same instrumentation points. The local
    // epoch also drives the gossip layer's queue-lag clock.
    let epoch = Instant::now();
    let local = SharedRing::new(FLIGHT_CAPACITY);
    let config = PaxosConfig::new(N);
    let gossip_config = GossipConfig::default();
    let mut gossip: Gossip = GossipNode::with_observer(
        NodeId::new(id as u32),
        neighbors,
        gossip_config,
        GroupedSemantics::new(vec![PaxosSemantics::full(config.clone())]),
        RecentCache::new(gossip_config.recent_cache_size),
        Tee::new(ring.clone(), local.clone()),
    );
    let mut paxos = PaxosProcess::with_observer(
        NodeId::new(id as u32),
        config,
        MemoryStorage::default(),
        Tee::new(ring.clone(), local.clone()),
    );
    let mut metrics = registry.map(|r| NodeMetrics::new(r, id));
    let mut delivered: Vec<(InstanceId, ValueId)> = Vec::new();
    let mut health = HealthTracker::new(HealthConfig::default());
    let mut flight = FlightRecorder::with_capacity(FLIGHT_CAPACITY);
    let mut flight_dumped = false;
    let mut last_health_poll: Option<Instant> = None;

    // Node 0 coordinates; every node submits one client command.
    if id == 0 {
        for out in paxos.start_round(Round::ZERO) {
            gossip.broadcast(Grouped::new(GROUP, out.msg));
        }
    }
    let payload = format!("command-from-node-{id}").into_bytes();
    let (_, out) = paxos.submit_payload(payload);
    for o in out {
        gossip.broadcast(Grouped::new(GROUP, o.msg));
    }

    // Scratch buffers and per-tick frame cache, reused across iterations:
    // the hot loop allocates only when a *distinct* message is encoded.
    let mut outgoing: Vec<(NodeId, Arc<WireMsg>)> = Vec::new();
    let mut deliveries: Vec<WireMsg> = Vec::new();
    let mut encode_buf: Vec<u8> = Vec::new();
    let mut frame_cache: HashMap<MessageId, (Bytes, u64)> = HashMap::new();
    let mut wire = WireCounters::default();

    let deadline = Instant::now() + Duration::from_secs(20);
    while delivered.len() < N && Instant::now() < deadline {
        // Ship pending gossip to the wire, encode-once: each distinct
        // message is serialized a single time and the same frame bytes are
        // shared (by handle) with every peer it fans out to.
        let tick = Instant::now();
        gossip.take_outgoing_shared_into(&mut outgoing);
        for (peer, msg) in outgoing.drain(..) {
            let (frame, fanout) = frame_cache.entry(msg.message_id()).or_insert_with(|| {
                let len = msg.encode_into(&mut encode_buf);
                wire.encoded += len as u64;
                (Bytes::from(&encode_buf[..]), 0)
            });
            *fanout += 1;
            wire.sent += frame.len() as u64;
            *wire.by_class.entry(msg.inner.kind().name()).or_insert(0) += frame.len() as u64;
            if let Some(m) = &metrics {
                m.frame_bytes.record(frame.len() as u64);
            }
            endpoint.send_shared(peer, frame.clone());
        }
        for (msg_id, (frame, fanout)) in frame_cache.drain() {
            ring.record_shared(Event::FrameShared {
                node: id as u32,
                msg: msg_id.trace_id(),
                fanout,
                bytes: frame.len() as u64,
            });
        }
        wire.cpu_transport_ns += tick.elapsed().as_nanos() as u64;
        // Pull one network event (with a small timeout so we keep pumping).
        if let Some(PeerEvent::Frame { from, payload }) =
            endpoint.recv_timeout(Duration::from_millis(20))
        {
            match WireMsg::from_bytes(&payload) {
                Ok(msg) => gossip.on_receive(from, msg),
                Err(e) => eprintln!("node {id}: bad frame from {from}: {e}"),
            }
        }
        // Drain deliveries into Paxos, broadcasting its responses.
        let tick = Instant::now();
        loop {
            gossip.take_deliveries_into(&mut deliveries);
            if deliveries.is_empty() {
                break;
            }
            for msg in deliveries.drain(..) {
                for o in paxos.handle(msg.inner) {
                    gossip.broadcast(Grouped::new(GROUP, o.msg));
                }
            }
        }
        for (instance, value) in paxos.take_decisions() {
            delivered.push((instance, value.id()));
        }
        wire.cpu_paxos_ns += tick.elapsed().as_nanos() as u64;
        if let Some(m) = &mut metrics {
            m.sample(&endpoint, &mut gossip, &paxos, &ring, &wire);
        }
        // Health poll: drain the flight ring through the stall detector
        // every 250 ms, wall clock. Runs with or without metrics.
        let now_ns = epoch.elapsed().as_nanos() as u64;
        gossip.set_clock(now_ns);
        let due = last_health_poll.is_none_or(|t| t.elapsed() >= Duration::from_millis(250));
        if due {
            last_health_poll = Some(Instant::now());
            let drained = local.drain();
            health.observe_all(&drained);
            flight.extend(drained);
            health.finalize(now_ns);
            for stall in health.take_events() {
                match &stall.event {
                    Event::StallDetected {
                        instance,
                        phase,
                        age_ms,
                        ..
                    } => eprintln!(
                        "node {id}: STALL — instance {instance} ({phase}) stuck for {age_ms} ms"
                    ),
                    Event::StallCleared {
                        instance,
                        stalled_ms,
                        ..
                    } => eprintln!(
                        "node {id}: stall cleared — instance {instance} after {stalled_ms} ms"
                    ),
                    _ => {}
                }
                // Stall events are trace events like any other: merge them
                // into the global stream so `tracetool health` sees them.
                ring.record_shared(stall.event);
            }
            if health.is_stalled() && !flight_dumped {
                flight_dumped = true;
                let path = format!("live-flight-node{id}.jsonl");
                match flight.write_dump(&path, &format!("node {id} progress stall")) {
                    Ok(n) => eprintln!("node {id}: flight: {path} ({n} events)"),
                    Err(e) => eprintln!("node {id}: cannot write {path}: {e}"),
                }
            }
            if let Some(m) = &metrics {
                m.sample_health(&health, now_ns);
            }
        }
    }
    results.send((id, delivered)).unwrap();
}
