//! Reliability under message loss: gossip's redundancy at work (§4.5).
//!
//! Messages received by every process are randomly discarded at increasing
//! rates while Paxos's timeout-triggered recovery is disabled — the only
//! thing standing between the protocol and lost commands is the redundancy
//! of the communication substrate. The example prints the portion of
//! submitted commands that were never ordered, for classic Gossip and
//! Semantic Gossip, and demonstrates the paper's finding: moderate loss
//! (≤10%) is fully masked, and the semantic optimizations do not cost
//! reliability.
//!
//! Run with:
//! ```text
//! cargo run --release --example reliability [n]
//! ```

use gossip_consensus::prelude::*;

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .map(|a| a.parse().expect("n"))
        .unwrap_or(13);
    let loss_rates = [0.0, 0.05, 0.10, 0.20, 0.30];
    let seeds = 3;

    println!("Injected receive-side loss, n = {n}, timeouts disabled, {seeds} runs per cell\n");
    print!("{:<16}", "setup");
    for loss in loss_rates {
        print!(" {:>8}", format!("{:.0}%", loss * 100.0));
    }
    println!("\n{}", "-".repeat(16 + loss_rates.len() * 9));

    for setup in [Setup::Gossip, Setup::SemanticGossip] {
        print!("{:<16}", setup.name());
        for loss in loss_rates {
            let mut submitted = 0u64;
            let mut lost = 0u64;
            for seed in 0..seeds {
                let params = ClusterParams::paper(n, setup)
                    .with_rate(26.0)
                    .with_seconds(3.0, 1.0)
                    .with_loss(loss)
                    .with_seed(7 + seed);
                let m = run_cluster(&params);
                assert!(m.safety_ok, "loss must never violate safety");
                submitted += m.submitted_in_window;
                lost += m.not_ordered_in_window;
            }
            let frac = lost as f64 / submitted.max(1) as f64;
            print!(
                " {:>8}",
                if lost == 0 {
                    "-".to_string()
                } else {
                    format!("{:.1}%", frac * 100.0)
                }
            );
        }
        println!();
    }

    println!(
        "\n'-' means every submitted command was ordered despite the loss.\n\
         Safety was verified in every run: no two replicas ever diverged."
    );
}
