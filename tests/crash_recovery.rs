//! Crash-recovery safety, end to end: the round-0 coordinator crashes in
//! the middle of Phase 2 while the network is losing messages, a failover
//! round takes over, and the crashed process later recovers from its
//! acceptor's stable storage — the only state §2.1's crash-recovery model
//! lets survive. The cross-process auditor must find every invariant
//! intact, and the cluster must keep ordering values after the crash.

use gossip_consensus::prelude::*;
use testbed::fuzz::{FaultPlan, FuzzConfig, Fuzzer};

fn crash_run(setup: Setup) -> RunMetrics {
    let params = ClusterParams::paper(13, setup)
        .with_rate(26.0)
        .with_seconds(1.0, 0.8)
        .with_seed(11)
        .with_loss(0.05)
        // Node 0 coordinates round 0; kill it mid-window, well after Phase 2
        // traffic is flowing, and bring it back before the drain ends.
        .with_crash(
            0,
            SimDuration::from_millis(500),
            SimDuration::from_millis(1100),
        )
        .with_failover(SimDuration::from_millis(250));
    run_cluster(&params)
}

#[test]
fn coordinator_crash_under_loss_stays_safe_and_makes_progress() {
    for setup in [Setup::Gossip, Setup::SemanticGossip] {
        let m = crash_run(setup);
        assert!(m.safety_ok, "{setup:?}: {:?}", m.violations);
        assert!(m.violations.is_empty(), "{setup:?}: {:?}", m.violations);
        // The system keeps deciding without its round-0 coordinator.
        assert!(m.ordered > 5, "{setup:?} ordered only {}", m.ordered);
        // The auditor sampled the crashed node's durable promise at the
        // crash, after recovery and at the end — and found it monotone
        // (a regression would have failed safety_ok above).
        assert!(
            m.audit.promises[0].len() >= 3,
            "{setup:?}: expected crash/recovery/end promise samples, got {:?}",
            m.audit.promises[0]
        );
        // Failover actually happened: someone besides p0 decided values in
        // a round above 0, i.e. the promise observations end above round 0.
        assert!(
            m.audit
                .promises
                .iter()
                .any(|obs| obs.last().is_some_and(|&(_, r)| r > 0)),
            "{setup:?}: no process ever moved past round 0"
        );
    }
}

#[test]
fn fuzz_harness_audits_a_coordinator_crash_schedule_clean() {
    // The same scenario driven through the fuzzer's plan/audit pipeline:
    // an explicit crash + loss + failover plan must replay clean, on both
    // substrates, including the cross-run neutrality machinery.
    let plan =
        FaultPlan::from_spec("loss=0.05;crash=0:500-1100;failover=250").expect("well-formed spec");
    let fuzzer = Fuzzer::new(FuzzConfig::default());
    let report = fuzzer.run_plan(&plan, 11);
    assert!(report.is_clean(), "{report}");
}
