//! Cross-crate integration of the gossip layer with the Paxos semantic
//! rules: a synchronous in-memory mesh of `GossipNode<PaxosMessage,
//! PaxosSemantics>` instances, checked against classic gossip on the same
//! topology and inputs.

use gossip_consensus::prelude::*;

/// A little synchronous gossip network over an arbitrary topology.
struct Mesh<S: Semantics<PaxosMessage>> {
    nodes: Vec<GossipNode<PaxosMessage, S>>,
}

impl<S: Semantics<PaxosMessage>> Mesh<S> {
    fn with(
        graph: &Graph,
        make: impl Fn(NodeId, Vec<NodeId>) -> GossipNode<PaxosMessage, S>,
    ) -> Self {
        let nodes = (0..graph.len())
            .map(|i| {
                let peers = graph
                    .neighbors(i)
                    .iter()
                    .map(|&p| NodeId::new(p as u32))
                    .collect();
                make(NodeId::new(i as u32), peers)
            })
            .collect();
        Mesh { nodes }
    }

    /// Runs dissemination to quiescence; returns per-node delivered counts.
    fn settle(&mut self) -> Vec<Vec<PaxosMessage>> {
        let mut delivered: Vec<Vec<PaxosMessage>> = vec![Vec::new(); self.nodes.len()];
        loop {
            let mut progressed = false;
            for (i, d) in delivered.iter_mut().enumerate() {
                d.extend(self.nodes[i].take_deliveries());
                for (peer, msg) in self.nodes[i].take_outgoing() {
                    self.nodes[peer.as_index()].on_receive(NodeId::new(i as u32), msg);
                    progressed = true;
                }
            }
            if !progressed {
                for (i, d) in delivered.iter_mut().enumerate() {
                    d.extend(self.nodes[i].take_deliveries());
                }
                return delivered;
            }
        }
    }
}

fn ring(n: usize) -> Graph {
    Graph::from_edges(n, (0..n).map(|i| (i, (i + 1) % n)))
}

fn vote(instance: u64, voter: u32) -> PaxosMessage {
    PaxosMessage::Phase2b {
        instance: InstanceId::new(instance),
        round: Round::ZERO,
        value: Value::new(NodeId::new(0), instance, vec![1; 64]),
        voters: vec![NodeId::new(voter)],
    }
}

fn decision(instance: u64) -> PaxosMessage {
    PaxosMessage::Decision {
        instance: InstanceId::new(instance),
        value: Value::new(NodeId::new(0), instance, vec![1; 64]),
        sender: NodeId::new(0),
    }
}

#[test]
fn classic_gossip_floods_votes_to_every_node() {
    let g = ring(7);
    let mut mesh = Mesh::with(&g, |id, peers| {
        GossipNode::new(id, peers, GossipConfig::default(), NoSemantics)
    });
    for voter in 0..4u32 {
        mesh.nodes[voter as usize].broadcast(vote(0, voter));
    }
    let delivered = mesh.settle();
    for (i, msgs) in delivered.iter().enumerate() {
        assert_eq!(msgs.len(), 4, "node {i} must deliver all 4 votes");
    }
}

#[test]
fn semantic_mesh_delivers_votes_possibly_aggregated() {
    let config = PaxosConfig::new(7);
    let g = ring(7);
    let mut mesh = Mesh::with(&g, |id, peers| {
        GossipNode::new(
            id,
            peers,
            GossipConfig::default(),
            PaxosSemantics::full(config.clone()),
        )
    });
    for voter in 0..3u32 {
        mesh.nodes[voter as usize].broadcast(vote(0, voter));
    }
    let delivered = mesh.settle();
    // Every node learns every distinct vote (disaggregation reverses any
    // aggregation on the path).
    for (i, msgs) in delivered.iter().enumerate() {
        let mut voters: Vec<u32> = msgs
            .iter()
            .filter_map(|m| match m {
                PaxosMessage::Phase2b { voters, .. } => Some(voters[0].as_u32()),
                _ => None,
            })
            .collect();
        voters.sort_unstable();
        voters.dedup();
        assert_eq!(voters, vec![0, 1, 2], "node {i} missed votes");
    }
}

#[test]
fn decision_stops_vote_propagation() {
    let config = PaxosConfig::new(5); // quorum 3
    let g = ring(5);
    let mut mesh = Mesh::with(&g, |id, peers| {
        GossipNode::new(
            id,
            peers,
            GossipConfig::default(),
            PaxosSemantics::full(config.clone()),
        )
    });
    // Node 0 broadcasts the decision first, then votes arrive behind it.
    mesh.nodes[0].broadcast(decision(0));
    mesh.nodes[0].broadcast(vote(0, 1));
    mesh.nodes[0].broadcast(vote(0, 2));
    let _ = mesh.settle();
    // Votes queued behind the decision were filtered on node 0's send path.
    let filtered: u64 = mesh.nodes.iter().map(|n| n.stats().filtered.get()).sum();
    assert!(
        filtered > 0,
        "decisions must make trailing votes filterable"
    );
}

#[test]
fn semantic_mesh_sends_fewer_messages_than_classic() {
    let config = PaxosConfig::new(9);
    let g = ring(9);

    let mut classic = Mesh::with(&g, |id, peers| {
        GossipNode::new(id, peers, GossipConfig::default(), NoSemantics)
    });
    let mut semantic = Mesh::with(&g, |id, peers| {
        GossipNode::new(
            id,
            peers,
            GossipConfig::default(),
            PaxosSemantics::full(config.clone()),
        )
    });

    // A full instance worth of traffic: 9 votes + the decision, injected
    // at the same node in the same order.
    for voter in 0..9u32 {
        classic.nodes[0].broadcast(vote(0, voter));
        semantic.nodes[0].broadcast(vote(0, voter));
    }
    classic.nodes[0].broadcast(decision(0));
    semantic.nodes[0].broadcast(decision(0));
    let _ = classic.settle();
    let _ = semantic.settle();

    let classic_sent: u64 = classic.nodes.iter().map(|n| n.stats().sent.get()).sum();
    let semantic_sent: u64 = semantic.nodes.iter().map(|n| n.stats().sent.get()).sum();
    assert!(
        semantic_sent < classic_sent,
        "semantic {semantic_sent} must send less than classic {classic_sent}"
    );
}

#[test]
fn aggregation_round_trips_through_the_wire_codec() {
    use gossip_consensus::gossip::codec::Wire;

    let config = PaxosConfig::new(5);
    let mut sem = PaxosSemantics::full(config);
    let pending = vec![vote(3, 0), vote(3, 2), vote(3, 4)];
    let out = sem.aggregate(pending, NodeId::new(9));
    assert_eq!(out.len(), 1);
    // Encode, decode, disaggregate: the original votes come back.
    let bytes = out[0].to_bytes();
    let decoded = PaxosMessage::from_bytes(&bytes).unwrap();
    let parts = sem.disaggregate(decoded);
    assert_eq!(parts.len(), 3);
    assert_eq!(parts[0], vote(3, 0));
    assert_eq!(parts[2], vote(3, 4));
}

#[test]
fn partially_connected_topology_still_reaches_everyone() {
    // A line graph is the worst case for dissemination.
    let g = Graph::from_edges(10, (0..9).map(|i| (i, i + 1)));
    let config = PaxosConfig::new(10);
    let mut mesh = Mesh::with(&g, |id, peers| {
        GossipNode::new(
            id,
            peers,
            GossipConfig::default(),
            PaxosSemantics::full(config.clone()),
        )
    });
    mesh.nodes[0].broadcast(decision(0));
    let delivered = mesh.settle();
    for (i, msgs) in delivered.iter().enumerate() {
        assert_eq!(msgs.len(), 1, "node {i} must receive the decision");
    }
}
