//! Cross-crate property-based tests: gossip dissemination and Paxos safety
//! under adversarial schedules.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;

use gossip_consensus::prelude::*;

// ---------------------------------------------------------------------------
// Gossip dissemination properties
// ---------------------------------------------------------------------------

/// Synchronously settles a mesh of classic gossip nodes over `graph` after
/// the given broadcasts; returns per-node delivered message counts.
fn settle_classic(graph: &Graph, broadcasts: &[(usize, u64)]) -> Vec<Vec<PaxosMessage>> {
    let mut nodes: Vec<GossipNode<PaxosMessage, NoSemantics>> = (0..graph.len())
        .map(|i| {
            let peers = graph
                .neighbors(i)
                .iter()
                .map(|&p| NodeId::new(p as u32))
                .collect();
            GossipNode::new(
                NodeId::new(i as u32),
                peers,
                GossipConfig::default(),
                NoSemantics,
            )
        })
        .collect();
    for &(origin, seq) in broadcasts {
        nodes[origin].broadcast(PaxosMessage::ClientValue {
            forwarder: NodeId::new(origin as u32),
            value: Value::new(NodeId::new(origin as u32), seq, vec![0; 8]),
        });
    }
    let mut delivered: Vec<Vec<PaxosMessage>> = vec![Vec::new(); graph.len()];
    loop {
        let mut progressed = false;
        for i in 0..nodes.len() {
            delivered[i].extend(nodes[i].take_deliveries());
            for (peer, msg) in nodes[i].take_outgoing() {
                nodes[peer.as_index()].on_receive(NodeId::new(i as u32), msg);
                progressed = true;
            }
        }
        if !progressed {
            for (i, d) in delivered.iter_mut().enumerate() {
                d.extend(nodes[i].take_deliveries());
            }
            return delivered;
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// On any connected overlay, every broadcast reaches every node exactly
    /// once (classic push gossip with duplicate suppression).
    #[test]
    fn prop_gossip_reaches_everyone_exactly_once(
        seed in 0u64..500,
        n in 4usize..20,
        broadcasts in proptest::collection::vec((0usize..20, 0u64..1000), 1..10),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let graph = connected_k_out(n, paper_fanout(n), &mut rng, 100).unwrap();
        let broadcasts: Vec<(usize, u64)> = broadcasts
            .into_iter()
            .map(|(origin, seq)| (origin % n, seq))
            .collect();
        // Distinct (origin, seq) pairs produce distinct message ids.
        let mut unique = broadcasts.clone();
        unique.sort_unstable();
        unique.dedup();
        let delivered = settle_classic(&graph, &unique);
        for (i, msgs) in delivered.iter().enumerate() {
            prop_assert_eq!(msgs.len(), unique.len(), "node {} delivery count", i);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Semantic gossip never hides a decision: on any connected overlay, if
    /// a quorum of votes plus the decision are injected, every node ends up
    /// knowing the decided instance even though filtering drops messages.
    #[test]
    fn prop_semantic_filtering_preserves_decision_knowledge(
        seed in 0u64..500,
        n in 4usize..16,
        injectors in proptest::collection::vec(0usize..16, 1..5),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let graph = connected_k_out(n, paper_fanout(n), &mut rng, 100).unwrap();
        let config = PaxosConfig::new(n);
        let mut nodes: Vec<GossipNode<PaxosMessage, PaxosSemantics>> = (0..n)
            .map(|i| {
                let peers = graph
                    .neighbors(i)
                    .iter()
                    .map(|&p| NodeId::new(p as u32))
                    .collect();
                GossipNode::new(
                    NodeId::new(i as u32),
                    peers,
                    GossipConfig::default(),
                    PaxosSemantics::full(config.clone()),
                )
            })
            .collect();
        // A quorum of identical votes, each injected at some node, then the
        // decision injected at the first node.
        let value = Value::new(NodeId::new(0), 7, vec![9; 16]);
        for (k, &at) in injectors.iter().enumerate() {
            nodes[at % n].broadcast(PaxosMessage::Phase2b {
                instance: InstanceId::ZERO,
                round: Round::ZERO,
                value: value.clone(),
                voters: vec![NodeId::new(k as u32)],
            });
        }
        nodes[injectors[0] % n].broadcast(PaxosMessage::Decision {
            instance: InstanceId::ZERO,
            value,
            sender: NodeId::new(0),
        });
        // Settle.
        loop {
            let mut progressed = false;
            for i in 0..n {
                let _ = nodes[i].take_deliveries();
                for (peer, msg) in nodes[i].take_outgoing() {
                    nodes[peer.as_index()].on_receive(NodeId::new(i as u32), msg);
                    progressed = true;
                }
            }
            if !progressed {
                break;
            }
        }
        for (i, node) in nodes.iter().enumerate() {
            prop_assert!(
                node.semantics().knows_decided(InstanceId::ZERO),
                "node {} never learned the decision",
                i
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Paxos safety under adversarial delivery
// ---------------------------------------------------------------------------

/// Runs Paxos with a randomized delivery schedule: messages may be dropped,
/// duplicated, and reordered arbitrarily. Returns every process's delivered
/// sequence.
fn chaos_run(
    n: usize,
    values: usize,
    seed: u64,
    drop_rate: f64,
    dup_rate: f64,
) -> Vec<Vec<(InstanceId, ValueId)>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let config = PaxosConfig::new(n);
    let mut procs: Vec<PaxosProcess> = (0..n as u32)
        .map(|i| PaxosProcess::new(NodeId::new(i), config.clone()))
        .collect();
    // (destination, message) pool; "broadcast" fans out to every process.
    let mut pool: VecDeque<(usize, PaxosMessage)> = VecDeque::new();
    let fan_out = |out: Vec<paxos::Outbound>, pool: &mut VecDeque<(usize, PaxosMessage)>| {
        for o in out {
            for dst in 0..n {
                pool.push_back((dst, o.msg.clone()));
            }
        }
    };

    fan_out(procs[0].start_round(Round::ZERO), &mut pool);
    for v in 0..values {
        let origin = v % n;
        let (_, out) = procs[origin].submit_payload(vec![v as u8]);
        fan_out(out, &mut pool);
    }

    let mut delivered: Vec<Vec<(InstanceId, ValueId)>> = vec![Vec::new(); n];
    let mut steps = 0usize;
    while let Some(pos) = pick(&mut rng, pool.len()) {
        steps += 1;
        if steps > 500_000 {
            break; // safety-net; the property only checks consistency
        }
        let (dst, msg) = pool.remove(pos).expect("index in range");
        if rng.gen::<f64>() < drop_rate {
            continue;
        }
        if rng.gen::<f64>() < dup_rate {
            pool.push_back((dst, msg.clone()));
        }
        fan_out(procs[dst].handle(msg), &mut pool);
        delivered[dst].extend(
            procs[dst]
                .take_decisions()
                .into_iter()
                .map(|(i, v)| (i, v.id())),
        );
    }
    delivered
}

fn pick(rng: &mut StdRng, len: usize) -> Option<usize> {
    if len == 0 {
        None
    } else {
        Some(rng.gen_range(0..len))
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Under arbitrary drops, duplications and reorderings, all processes
    /// deliver consistent prefixes: no two processes ever disagree on the
    /// value of an instance.
    #[test]
    fn prop_paxos_prefix_consistency(
        seed in 0u64..10_000,
        n in 3usize..8,
        values in 1usize..6,
        drop in 0.0f64..0.4,
        dup in 0.0f64..0.3,
    ) {
        let delivered = chaos_run(n, values, seed, drop, dup);
        let longest = delivered.iter().max_by_key(|d| d.len()).unwrap().clone();
        for (p, log) in delivered.iter().enumerate() {
            for (a, b) in log.iter().zip(longest.iter()) {
                prop_assert_eq!(a, b, "process {} diverged", p);
            }
        }
    }

    /// With no loss, every submitted value is eventually delivered by every
    /// process, in the same order.
    #[test]
    fn prop_paxos_liveness_without_loss(
        seed in 0u64..10_000,
        n in 3usize..8,
        values in 1usize..6,
    ) {
        let delivered = chaos_run(n, values, seed, 0.0, 0.0);
        for (p, log) in delivered.iter().enumerate() {
            prop_assert_eq!(log.len(), values, "process {} must deliver all", p);
            prop_assert_eq!(log, &delivered[0], "process {} order differs", p);
        }
    }
}

// ---------------------------------------------------------------------------
// Wire-format properties
// ---------------------------------------------------------------------------

fn arb_value() -> impl Strategy<Value = Value> {
    (
        0u32..50,
        0u64..1000,
        proptest::collection::vec(any::<u8>(), 0..64),
    )
        .prop_map(|(origin, seq, payload)| Value::new(NodeId::new(origin), seq, payload))
}

fn arb_message() -> impl Strategy<Value = PaxosMessage> {
    let voters = proptest::collection::btree_set(0u32..64, 1..8)
        .prop_map(|s| s.into_iter().map(NodeId::new).collect::<Vec<_>>());
    prop_oneof![
        (0u32..50, arb_value()).prop_map(|(f, value)| PaxosMessage::ClientValue {
            forwarder: NodeId::new(f),
            value,
        }),
        (0u32..100, 0u64..1000, 0u32..50).prop_map(|(r, i, s)| PaxosMessage::Phase1a {
            round: Round::new(r),
            from_instance: InstanceId::new(i),
            sender: NodeId::new(s),
        }),
        (0u64..1000, 0u32..100, arb_value(), 0u32..50).prop_map(|(i, r, value, s)| {
            PaxosMessage::Phase2a {
                instance: InstanceId::new(i),
                round: Round::new(r),
                value,
                sender: NodeId::new(s),
            }
        }),
        (0u64..1000, 0u32..100, arb_value(), voters).prop_map(|(i, r, value, voters)| {
            PaxosMessage::Phase2b {
                instance: InstanceId::new(i),
                round: Round::new(r),
                value,
                voters,
            }
        }),
        (0u64..1000, arb_value(), 0u32..50).prop_map(|(i, value, s)| PaxosMessage::Decision {
            instance: InstanceId::new(i),
            value,
            sender: NodeId::new(s),
        }),
    ]
}

proptest! {
    /// Any Paxos message survives encode → decode byte-identically, and the
    /// declared encoded length is exact.
    #[test]
    fn prop_message_wire_round_trip(msg in arb_message()) {
        use gossip_consensus::gossip::codec::Wire;
        let bytes = msg.to_bytes();
        prop_assert_eq!(bytes.len(), msg.encoded_len());
        prop_assert_eq!(PaxosMessage::from_bytes(&bytes).unwrap(), msg);
    }

    /// Disaggregating an aggregated vote yields votes whose ids match what
    /// the original senders would have produced, and re-aggregation is
    /// stable.
    #[test]
    fn prop_aggregation_reversible(
        i in 0u64..100,
        r in 0u32..50,
        value in arb_value(),
        voters in proptest::collection::btree_set(0u32..32, 2..10),
    ) {
        let voters: Vec<NodeId> = voters.into_iter().map(NodeId::new).collect();
        let agg = PaxosMessage::Phase2b {
            instance: InstanceId::new(i),
            round: Round::new(r),
            value,
            voters: voters.clone(),
        };
        let parts = agg.clone().disaggregate_votes();
        prop_assert_eq!(parts.len(), voters.len());
        let mut sem = PaxosSemantics::full(PaxosConfig::new(64));
        let re = sem.aggregate(parts, NodeId::new(63));
        prop_assert_eq!(re.len(), 1);
        prop_assert_eq!(re.into_iter().next().unwrap(), agg);
    }
}

// ---------------------------------------------------------------------------
// Observer neutrality
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Attaching a `RingObserver` must not change gossip behavior: fed the
    /// same operation sequence, an instrumented node's delivery and outgoing
    /// queues stay byte-identical to an uninstrumented node's.
    #[test]
    fn prop_observer_is_behavior_neutral(
        ops in proptest::collection::vec(
            (0u32..8, 0u64..64, any::<bool>()),
            1..60,
        ),
    ) {
        use gossip_consensus::gossip::codec::Wire;
        use gossip_consensus::gossip::RecentCache;
        use gossip_consensus::obs::RingObserver;

        let peers: Vec<NodeId> = (1..8).map(NodeId::new).collect();
        let config = GossipConfig::default();
        let mut plain: GossipNode<PaxosMessage, NoSemantics> =
            GossipNode::new(NodeId::new(0), peers.clone(), config, NoSemantics);
        let mut traced: GossipNode<PaxosMessage, NoSemantics, RecentCache, RingObserver> =
            GossipNode::with_observer(
                NodeId::new(0),
                peers,
                config,
                NoSemantics,
                RecentCache::new(config.recent_cache_size),
                RingObserver::with_capacity(1024),
            );

        let mut recorded = 0usize;
        for &(origin, seq, is_broadcast) in &ops {
            let value = Value::new(NodeId::new(origin), seq, vec![origin as u8; 16]);
            let msg = PaxosMessage::ClientValue { forwarder: NodeId::new(origin), value };
            if is_broadcast {
                plain.broadcast(msg.clone());
                traced.broadcast(msg);
            } else {
                let from = NodeId::new(origin % 7 + 1);
                plain.on_receive(from, msg.clone());
                traced.on_receive(from, msg);
            }

            let plain_out: Vec<(u32, Vec<u8>)> = plain
                .take_outgoing()
                .into_iter()
                .map(|(p, m)| (p.as_u32(), m.to_bytes()))
                .collect();
            let traced_out: Vec<(u32, Vec<u8>)> = traced
                .take_outgoing()
                .into_iter()
                .map(|(p, m)| (p.as_u32(), m.to_bytes()))
                .collect();
            prop_assert_eq!(plain_out, traced_out);

            let plain_del: Vec<Vec<u8>> =
                plain.take_deliveries().iter().map(Wire::to_bytes).collect();
            let traced_del: Vec<Vec<u8>> =
                traced.take_deliveries().iter().map(Wire::to_bytes).collect();
            prop_assert_eq!(plain_del, traced_del);

            recorded = traced.observer().len() + traced.observer().discarded() as usize;
        }
        // The ring really was recording while behavior stayed identical.
        prop_assert!(recorded > 0);
    }
}

// ---------------------------------------------------------------------------
// Observability: bounded histograms and the trace codec
// ---------------------------------------------------------------------------

proptest! {
    /// A `LogHistogram` quantile estimate always lands inside the bucket of
    /// the exact nearest-rank percentile over the same samples — the
    /// bounded-memory summary is never more than one bucket (≤ 6.25%
    /// relative error) away from the truth.
    #[test]
    fn prop_log_quantile_within_one_bucket_of_exact(
        vals in proptest::collection::vec(any::<u64>(), 1..300),
        p in 0.0f64..=100.0,
    ) {
        use gossip_consensus::obs::hist::{bucket_bounds, nearest_rank};
        use gossip_consensus::obs::LogHistogram;

        let mut hist = LogHistogram::new();
        for &v in &vals {
            hist.record(v);
        }
        let mut sorted = vals;
        sorted.sort_unstable();
        let exact = nearest_rank(&sorted, p).unwrap();
        let (lo, hi) = bucket_bounds(exact);
        let est = hist.quantile(p / 100.0).unwrap();
        prop_assert!(
            (lo..=hi).contains(&est),
            "estimate {} outside bucket [{}, {}] of exact {}",
            est, lo, hi, exact
        );
    }

    /// Merging histograms is associative and commutative, and preserves
    /// count, sum and extremes — the partial aggregates a fleet of nodes
    /// ships can be combined in any order.
    #[test]
    fn prop_log_merge_order_independent(
        a in proptest::collection::vec(any::<u64>(), 0..80),
        b in proptest::collection::vec(any::<u64>(), 0..80),
        c in proptest::collection::vec(any::<u64>(), 0..80),
    ) {
        use gossip_consensus::obs::LogHistogram;

        let build = |vals: &[u64]| {
            let mut h = LogHistogram::new();
            for &v in vals {
                h.record(v);
            }
            h
        };
        let (ha, hb, hc) = (build(&a), build(&b), build(&c));

        // (a ⊕ b) ⊕ c
        let mut left = ha.clone();
        left.merge(&hb);
        left.merge(&hc);
        // a ⊕ (b ⊕ c)
        let mut right_inner = hb.clone();
        right_inner.merge(&hc);
        let mut right = ha.clone();
        right.merge(&right_inner);
        prop_assert_eq!(&left, &right);

        // b ⊕ a == a ⊕ b
        let mut ab = ha.clone();
        ab.merge(&hb);
        let mut ba = hb.clone();
        ba.merge(&ha);
        prop_assert_eq!(&ab, &ba);

        // The merged summary matches recording everything into one.
        let mut all = a.clone();
        all.extend(&b);
        all.extend(&c);
        prop_assert_eq!(&left, &build(&all));
    }

    /// Every `Event` variant — including the live-gauge samples — survives
    /// the JSONL round trip with randomized field values, and the generated
    /// examples cover every declared kind.
    #[test]
    fn prop_event_jsonl_round_trip_all_variants(
        nums in proptest::collection::vec(any::<u64>(), 16..17),
        // Printable ASCII including `"` and `\`, to exercise JSON escaping.
        label in proptest::collection::vec(32u8..127u8, 0..25)
            .prop_map(|b| b.into_iter().map(char::from).collect::<String>()),
        at in any::<u64>(),
    ) {
        use gossip_consensus::obs::json::JsonValue;
        use gossip_consensus::obs::{Event, TimedEvent};

        let examples = Event::examples();
        let kinds: std::collections::BTreeSet<&str> =
            examples.iter().map(|e| e.kind()).collect();
        prop_assert_eq!(kinds.len(), Event::KINDS.len());
        for kind in Event::KINDS {
            prop_assert!(kinds.contains(kind), "example missing for {}", kind);
        }
        for required in [
            "queue_depth_sampled",
            "cache_occupancy_sampled",
            "instance_window_sampled",
        ] {
            prop_assert!(Event::KINDS.contains(&required), "{} kind is gone", required);
        }

        for (i, example) in examples.iter().enumerate() {
            // Randomize every field through the JSON codec. The example
            // value reveals the field's width: u64 examples are above
            // 2^53, so anything small is a u32 field and the random value
            // is reduced into range.
            let JsonValue::Obj(mut obj) = example.to_json_value() else {
                return Err(TestCaseError::fail("event did not encode as an object"));
            };
            let mut slot = i;
            for (key, value) in obj.iter_mut() {
                if key == "type" {
                    continue;
                }
                match value {
                    JsonValue::Int(old) => {
                        let fresh = nums[slot % nums.len()];
                        let fresh = if *old <= u32::MAX as i128 {
                            fresh % (u32::MAX as u64 + 1)
                        } else {
                            fresh
                        };
                        *value = JsonValue::Int(fresh as i128);
                        slot += 1;
                    }
                    JsonValue::Str(_) => *value = JsonValue::Str(label.clone()),
                    _ => {}
                }
            }
            let randomized = Event::from_json_value(&JsonValue::Obj(obj))
                .map_err(|e| TestCaseError::fail(format!("decode randomized: {e}")))?;
            let timed = TimedEvent { at, event: randomized };
            let line = timed.to_json();
            prop_assert!(!line.contains('\n'), "JSONL event must be one line");
            let back = TimedEvent::from_json(&line)
                .map_err(|e| TestCaseError::fail(format!("round trip: {e}")))?;
            prop_assert_eq!(back, timed);
        }
    }
}
