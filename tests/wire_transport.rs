//! Integration of the wire codec with the TCP transport: real Paxos
//! messages over real sockets.

use std::time::Duration;

use gossip_consensus::gossip::codec::Wire;
use gossip_consensus::prelude::*;
use gossip_consensus::transport::{Endpoint, EndpointConfig, PeerEvent};

fn sample_messages() -> Vec<PaxosMessage> {
    let value = Value::new(NodeId::new(3), 7, vec![0xCD; 1024]);
    vec![
        PaxosMessage::ClientValue {
            forwarder: NodeId::new(1),
            value: value.clone(),
        },
        PaxosMessage::Phase1a {
            round: Round::new(1),
            from_instance: InstanceId::ZERO,
            sender: NodeId::new(0),
        },
        PaxosMessage::Phase2a {
            instance: InstanceId::new(5),
            round: Round::new(1),
            value: value.clone(),
            sender: NodeId::new(0),
        },
        PaxosMessage::Phase2b {
            instance: InstanceId::new(5),
            round: Round::new(1),
            value: value.clone(),
            voters: vec![NodeId::new(2), NodeId::new(4), NodeId::new(6)],
        },
        PaxosMessage::Decision {
            instance: InstanceId::new(5),
            value,
            sender: NodeId::new(0),
        },
    ]
}

#[test]
fn paxos_messages_survive_the_socket() {
    let a = Endpoint::bind(EndpointConfig::new(NodeId::new(0)), "127.0.0.1:0").unwrap();
    let b = Endpoint::bind(EndpointConfig::new(NodeId::new(1)), "127.0.0.1:0").unwrap();
    b.dial(a.local_addr()).unwrap();

    let originals = sample_messages();
    for msg in &originals {
        assert!(b.send(NodeId::new(0), msg.to_bytes()));
    }

    let mut received = Vec::new();
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while received.len() < originals.len() {
        assert!(std::time::Instant::now() < deadline, "timed out");
        match a.recv_timeout(Duration::from_millis(100)) {
            Some(PeerEvent::Frame { from, payload }) => {
                assert_eq!(from, NodeId::new(1));
                received.push(PaxosMessage::from_bytes(&payload).unwrap());
            }
            _ => continue,
        }
    }
    assert_eq!(received, originals);
}

#[test]
fn corrupted_frames_are_rejected_not_crashing() {
    let a = Endpoint::bind(EndpointConfig::new(NodeId::new(0)), "127.0.0.1:0").unwrap();
    let b = Endpoint::bind(EndpointConfig::new(NodeId::new(1)), "127.0.0.1:0").unwrap();
    b.dial(a.local_addr()).unwrap();
    b.send(NodeId::new(0), vec![0xFF, 0x00, 0x13]);

    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        assert!(std::time::Instant::now() < deadline, "timed out");
        if let Some(PeerEvent::Frame { payload, .. }) = a.recv_timeout(Duration::from_millis(100)) {
            assert!(PaxosMessage::from_bytes(&payload).is_err());
            break;
        }
    }
}

#[test]
fn gossip_over_tcp_disseminates_across_two_hops() {
    // Chain topology: 0 - 1 - 2; node 0's broadcast must reach node 2
    // through node 1's gossip relay.
    let endpoints: Vec<Endpoint> = (0..3u32)
        .map(|i| Endpoint::bind(EndpointConfig::new(NodeId::new(i)), "127.0.0.1:0").unwrap())
        .collect();
    endpoints[0].dial(endpoints[1].local_addr()).unwrap();
    endpoints[1].dial(endpoints[2].local_addr()).unwrap();

    let config = PaxosConfig::new(3);
    let peers = [vec![1u32], vec![0, 2], vec![1]];
    let mut gossips: Vec<GossipNode<PaxosMessage, PaxosSemantics>> = (0..3usize)
        .map(|i| {
            GossipNode::new(
                NodeId::new(i as u32),
                peers[i].iter().map(|&p| NodeId::new(p)).collect(),
                GossipConfig::default(),
                PaxosSemantics::full(config.clone()),
            )
        })
        .collect();

    // Wait for the two links.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while endpoints[1].peers().len() < 2 {
        assert!(std::time::Instant::now() < deadline);
        std::thread::sleep(Duration::from_millis(10));
    }

    let decision = PaxosMessage::Decision {
        instance: InstanceId::ZERO,
        value: Value::new(NodeId::new(0), 0, b"x".to_vec()),
        sender: NodeId::new(0),
    };
    gossips[0].broadcast(decision.clone());

    let mut node2_got = false;
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while !node2_got {
        assert!(
            std::time::Instant::now() < deadline,
            "dissemination timed out"
        );
        for i in 0..3 {
            for (peer, msg) in gossips[i].take_outgoing() {
                endpoints[i].send(peer, msg.to_bytes());
            }
            if let Some(PeerEvent::Frame { from, payload }) =
                endpoints[i].recv_timeout(Duration::from_millis(10))
            {
                gossips[i].on_receive(from, PaxosMessage::from_bytes(&payload).unwrap());
            }
            if i == 2 {
                for msg in gossips[2].take_deliveries() {
                    assert_eq!(msg, decision);
                    node2_got = true;
                }
            }
        }
    }
}
