//! Full-stack integration tests: the complete simulated deployment
//! (simnet + overlay + gossip + semantics + Paxos + clients) under each of
//! the paper's setups.

use gossip_consensus::prelude::*;

fn run(setup: Setup, n: usize, rate: f64, seed: u64) -> RunMetrics {
    let params = ClusterParams::paper(n, setup)
        .with_rate(rate)
        .with_seconds(2.0, 1.0)
        .with_seed(seed);
    run_cluster(&params)
}

#[test]
fn all_setups_order_all_values_at_low_load() {
    for setup in [Setup::Baseline, Setup::Gossip, Setup::SemanticGossip] {
        let m = run(setup, 13, 13.0, 1);
        assert!(m.safety_ok, "{setup:?}");
        assert_eq!(m.not_ordered_in_window, 0, "{setup:?} lost values");
        assert!(m.ordered >= 10, "{setup:?} ordered too little");
    }
}

#[test]
fn latency_ordering_matches_the_paper() {
    // Baseline < Semantic Gossip <= Gossip in average latency at low load.
    let b = run(Setup::Baseline, 13, 13.0, 2).latency_stats().0;
    let g = run(Setup::Gossip, 13, 13.0, 2).latency_stats().0;
    let s = run(Setup::SemanticGossip, 13, 13.0, 2).latency_stats().0;
    assert!(b < g, "baseline {b} should beat gossip {g}");
    assert!(b < s, "baseline {b} should beat semantic {s}");
}

#[test]
fn semantic_gossip_cuts_traffic_under_load() {
    let g = run(Setup::Gossip, 13, 60.0, 3);
    let s = run(Setup::SemanticGossip, 13, 60.0, 3);
    assert!(
        (s.gossip_received() as f64) < 0.9 * g.gossip_received() as f64,
        "semantic {} vs classic {}",
        s.gossip_received(),
        g.gossip_received()
    );
    // Filtering also reduces what Paxos has to process.
    assert!(s.gossip.delivered.get() <= g.gossip.delivered.get());
    // But gossip's redundancy is preserved: duplicates still dominate.
    assert!(s.duplicate_ratio() > 0.2, "{}", s.duplicate_ratio());
}

#[test]
fn ablation_modes_run_and_stay_safe() {
    for mode in [SemanticMode::FILTERING_ONLY, SemanticMode::AGGREGATION_ONLY] {
        let m = run(Setup::Custom(mode), 13, 26.0, 4);
        assert!(m.safety_ok);
        assert_eq!(m.not_ordered_in_window, 0, "{mode:?}");
    }
}

#[test]
fn filtering_only_filters_and_aggregation_only_aggregates() {
    let f = run(Setup::Custom(SemanticMode::FILTERING_ONLY), 13, 40.0, 5);
    assert!(f.gossip.filtered.get() > 0);
    assert_eq!(f.gossip.aggregated_away.get(), 0);

    let a = run(Setup::Custom(SemanticMode::AGGREGATION_ONLY), 13, 40.0, 5);
    assert_eq!(a.gossip.filtered.get(), 0);
    assert!(a.gossip.aggregated_away.get() > 0);
}

#[test]
fn larger_system_still_works() {
    let m = run(Setup::SemanticGossip, 27, 20.0, 6);
    assert!(m.safety_ok);
    assert_eq!(m.not_ordered_in_window, 0);
}

#[test]
fn loss_beyond_redundancy_loses_values_but_never_safety() {
    for setup in [Setup::Gossip, Setup::SemanticGossip] {
        let params = ClusterParams::paper(13, setup)
            .with_rate(26.0)
            .with_seconds(2.0, 1.0)
            .with_loss(0.45)
            .with_seed(7);
        let m = run_cluster(&params);
        assert!(m.safety_ok, "{setup:?}: replicas must never diverge");
        assert!(m.not_ordered_in_window > 0, "{setup:?}: 45% loss must bite");
    }
}

#[test]
fn throughput_reflects_offered_load_below_saturation() {
    let m = run(Setup::Baseline, 13, 40.0, 8);
    let tput = m.throughput();
    assert!(
        (tput - 40.0).abs() < 8.0,
        "throughput {tput} should track the 40/s offered load"
    );
}

#[test]
fn region_latency_reflects_geography_in_baseline() {
    let m = run(Setup::Baseline, 13, 13.0, 9);
    // The client co-located with the coordinator (slot 0, North Virginia)
    // must see lower latency than the farthest region (Singapore, slot 12).
    let near = m.latency_by_region[0].mean();
    let far = m.latency_by_region[12].mean();
    assert!(
        near < far,
        "coordinator-region client {near} should beat Singapore {far}"
    );
}
