//! Properties of the encode-once broadcast path: sharing payloads by
//! handle and frame bytes by `Bytes` must be observationally identical to
//! the old clone-per-peer, encode-per-peer implementation.

use std::collections::HashMap;

use proptest::prelude::*;

use gossip_consensus::gossip::codec::Wire;
use gossip_consensus::prelude::*;
use gossip_consensus::transport::Bytes;

fn arb_value() -> impl Strategy<Value = Value> {
    (
        0u32..50,
        0u64..1000,
        proptest::collection::vec(any::<u8>(), 0..64),
    )
        .prop_map(|(origin, seq, payload)| Value::new(NodeId::new(origin), seq, payload))
}

fn arb_message() -> impl Strategy<Value = PaxosMessage> {
    let voters = proptest::collection::btree_set(0u32..64, 1..8)
        .prop_map(|s| s.into_iter().map(NodeId::new).collect::<Vec<_>>());
    prop_oneof![
        (0u32..50, arb_value()).prop_map(|(f, value)| PaxosMessage::ClientValue {
            forwarder: NodeId::new(f),
            value,
        }),
        (0u32..100, 0u64..1000, 0u32..50).prop_map(|(r, i, s)| PaxosMessage::Phase1a {
            round: Round::new(r),
            from_instance: InstanceId::new(i),
            sender: NodeId::new(s),
        }),
        (0u64..1000, 0u32..100, arb_value(), 0u32..50).prop_map(|(i, r, value, s)| {
            PaxosMessage::Phase2a {
                instance: InstanceId::new(i),
                round: Round::new(r),
                value,
                sender: NodeId::new(s),
            }
        }),
        (0u64..1000, 0u32..100, arb_value(), voters).prop_map(|(i, r, value, voters)| {
            PaxosMessage::Phase2b {
                instance: InstanceId::new(i),
                round: Round::new(r),
                value,
                voters,
            }
        }),
        (0u64..1000, arb_value(), 0u32..50).prop_map(|(i, value, s)| PaxosMessage::Decision {
            instance: InstanceId::new(i),
            value,
            sender: NodeId::new(s),
        }),
    ]
}

fn classic_node(peers: u32) -> GossipNode<PaxosMessage, NoSemantics> {
    GossipNode::classic(
        NodeId::new(0),
        (1..=peers).map(NodeId::new).collect(),
        GossipConfig::default(),
    )
}

proptest! {
    /// `encode_into` (the reusable-buffer path) produces exactly the bytes
    /// of the allocating `to_bytes`, for arbitrary messages, regardless of
    /// what the scratch buffer held before.
    #[test]
    fn prop_encode_into_matches_to_bytes(
        msgs in proptest::collection::vec(arb_message(), 1..8),
    ) {
        let mut buf: Vec<u8> = vec![0xFF; 7]; // stale garbage to overwrite
        for msg in &msgs {
            let len = msg.encode_into(&mut buf);
            prop_assert_eq!(len, buf.len());
            prop_assert_eq!(&buf, &msg.to_bytes());
        }
    }

    /// The encode-once shared-frame path — drain shared handles, serialize
    /// each distinct message a single time into a reused buffer, fan the
    /// same `Bytes` out to every peer — puts byte-identical frames on the
    /// wire to encoding independently for every peer (the old path).
    #[test]
    fn prop_shared_frames_byte_identical_to_per_peer_encoding(
        msgs in proptest::collection::vec(arb_message(), 1..10),
        peers in 1u32..8,
    ) {
        let mut node = classic_node(peers);
        for msg in &msgs {
            node.broadcast(msg.clone());
        }
        let shared = node.take_outgoing_shared();

        // Encode-once: one frame per distinct message id, shared by handle.
        let mut scratch = Vec::new();
        let mut frames: HashMap<MessageId, Bytes> = HashMap::new();
        let encoded_once: Vec<(NodeId, Bytes)> = shared
            .iter()
            .map(|(peer, msg)| {
                let frame = frames
                    .entry(msg.message_id())
                    .or_insert_with(|| {
                        msg.encode_into(&mut scratch);
                        Bytes::from(&scratch[..])
                    })
                    .clone();
                (*peer, frame)
            })
            .collect();

        // Per-peer: every (peer, message) pair encoded independently.
        let per_peer: Vec<(NodeId, Vec<u8>)> = shared
            .iter()
            .map(|(peer, msg)| (*peer, (**msg).to_bytes()))
            .collect();

        prop_assert_eq!(encoded_once.len(), per_peer.len());
        for ((p1, shared_frame), (p2, owned_frame)) in
            encoded_once.iter().zip(per_peer.iter())
        {
            prop_assert_eq!(p1, p2);
            prop_assert_eq!(&shared_frame[..], &owned_frame[..]);
        }
    }

    /// The `_into` drain variants agree exactly with the allocating drains:
    /// two nodes fed the same operations yield the same deliveries and the
    /// same outgoing pairs whichever way they are drained, and the scratch
    /// buffers are appended to, never clobbered.
    #[test]
    fn prop_into_drains_agree_with_allocating_drains(
        ops in proptest::collection::vec((arb_message(), any::<bool>(), 1u32..8), 1..20),
        peers in 1u32..8,
    ) {
        let mut a = classic_node(peers);
        let mut b = classic_node(peers);
        let mut deliveries: Vec<PaxosMessage> = Vec::new();
        let mut outgoing: Vec<(NodeId, PaxosMessage)> = Vec::new();
        for (msg, is_broadcast, from) in &ops {
            let from = NodeId::new(from % peers + 1);
            if *is_broadcast {
                a.broadcast(msg.clone());
                b.broadcast(msg.clone());
            } else {
                a.on_receive(from, msg.clone());
                b.on_receive(from, msg.clone());
            }
            let del_a = a.take_deliveries();
            let out_a = a.take_outgoing();
            let del_start = deliveries.len();
            let out_start = outgoing.len();
            b.take_deliveries_into(&mut deliveries);
            b.take_outgoing_into(&mut outgoing);
            prop_assert_eq!(&deliveries[del_start..], &del_a[..]);
            prop_assert_eq!(&outgoing[out_start..], &out_a[..]);
        }
        prop_assert_eq!(a.stats().sent.get(), b.stats().sent.get());
        prop_assert_eq!(a.stats().delivered.get(), b.stats().delivered.get());
    }
}
