//! The paper's generality claim (§5), executed: the raft-lite protocol over
//! the same semantic gossip substrate, compared against classic gossip on
//! identical topologies and inputs.

use gossip_consensus::prelude::*;
use raft_lite::{RaftConfig, RaftMessage, RaftNode, RaftSemantics, Term};

struct RaftMesh {
    gossips: Vec<GossipNode<RaftMessage, RaftSemantics>>,
    nodes: Vec<RaftNode>,
}

impl RaftMesh {
    fn new(graph: &Graph, semantic: bool) -> Self {
        let n = graph.len();
        let config = RaftConfig::new(n);
        let gossips = (0..n)
            .map(|i| {
                let peers = graph
                    .neighbors(i)
                    .iter()
                    .map(|&p| NodeId::new(p as u32))
                    .collect();
                let sem = if semantic {
                    RaftSemantics::full(config.clone())
                } else {
                    RaftSemantics::disabled(config.clone())
                };
                GossipNode::new(NodeId::new(i as u32), peers, GossipConfig::default(), sem)
            })
            .collect();
        let nodes = (0..n as u32)
            .map(|i| RaftNode::new(NodeId::new(i), config.clone()))
            .collect();
        RaftMesh { gossips, nodes }
    }

    fn broadcast_from(&mut self, node: usize, msgs: Vec<RaftMessage>) {
        for m in msgs {
            self.gossips[node].broadcast(m);
        }
    }

    fn settle(&mut self) {
        loop {
            let mut progressed = false;
            for i in 0..self.nodes.len() {
                loop {
                    let deliveries = self.gossips[i].take_deliveries();
                    if deliveries.is_empty() {
                        break;
                    }
                    progressed = true;
                    for msg in deliveries {
                        let out = self.nodes[i].handle(msg);
                        for m in out {
                            self.gossips[i].broadcast(m);
                        }
                    }
                }
                for (peer, msg) in self.gossips[i].take_outgoing() {
                    self.gossips[peer.as_index()].on_receive(NodeId::new(i as u32), msg);
                    progressed = true;
                }
            }
            if !progressed {
                return;
            }
        }
    }

    fn total_sent(&self) -> u64 {
        self.gossips.iter().map(|g| g.stats().sent.get()).sum()
    }
}

fn random_overlay(n: usize, seed: u64) -> Graph {
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    connected_k_out(n, paper_fanout(n), &mut rng, 100).unwrap()
}

fn run_commands(mesh: &mut RaftMesh, commands: usize) {
    let out = mesh.nodes[0].become_leader(Term::ZERO);
    mesh.broadcast_from(0, out);
    for c in 0..commands {
        let origin = c % mesh.nodes.len();
        let out = mesh.nodes[origin].submit(vec![c as u8]);
        mesh.broadcast_from(origin, out);
        // Interleave dissemination so cumulative acks spread naturally.
        if c % 3 == 2 {
            mesh.settle();
        }
    }
    mesh.settle();
}

#[test]
fn raft_commits_identically_on_classic_and_semantic_gossip() {
    let graph = random_overlay(9, 1);
    let mut classic = RaftMesh::new(&graph, false);
    let mut semantic = RaftMesh::new(&graph, true);
    run_commands(&mut classic, 12);
    run_commands(&mut semantic, 12);

    let reference: Vec<_> = classic.nodes[0].take_committed();
    assert_eq!(reference.len(), 12);
    for i in 1..classic.nodes.len() {
        assert_eq!(classic.nodes[i].take_committed(), reference);
    }
    // The semantic mesh commits the same commands in the same order
    // (origins and payloads identical by construction).
    let semantic_ref: Vec<_> = semantic.nodes[0].take_committed();
    assert_eq!(semantic_ref.len(), 12);
    for i in 1..semantic.nodes.len() {
        assert_eq!(semantic.nodes[i].take_committed(), semantic_ref);
    }
    for (a, b) in reference.iter().zip(semantic_ref.iter()) {
        assert_eq!(a.0, b.0);
        assert_eq!(a.1.id(), b.1.id());
    }
}

#[test]
fn semantic_gossip_sends_fewer_raft_messages() {
    let graph = random_overlay(11, 2);
    let mut classic = RaftMesh::new(&graph, false);
    let mut semantic = RaftMesh::new(&graph, true);
    run_commands(&mut classic, 15);
    run_commands(&mut semantic, 15);
    let c = classic.total_sent();
    let s = semantic.total_sent();
    assert!(
        (s as f64) < 0.9 * c as f64,
        "semantic raft should cut traffic: {s} vs {c}"
    );
    // And semantics actually both filtered and aggregated something.
    let filtered: u64 = semantic
        .gossips
        .iter()
        .map(|g| g.stats().filtered.get())
        .sum();
    let aggregated: u64 = semantic
        .gossips
        .iter()
        .map(|g| g.stats().aggregated_away.get())
        .sum();
    assert!(filtered > 0, "no acks/commits were filtered");
    assert!(aggregated > 0, "no acks were aggregated");
}

#[test]
fn raft_over_line_topology_still_commits() {
    // Worst-case partially connected network: a line.
    let graph = Graph::from_edges(7, (0..6).map(|i| (i, i + 1)));
    let mut mesh = RaftMesh::new(&graph, true);
    run_commands(&mut mesh, 7);
    for n in mesh.nodes.iter_mut() {
        assert_eq!(n.take_committed().len(), 7, "at {}", n.id());
    }
}
